"""CLI output through stdlib ``logging``: one reporter, three volumes.

Every user-facing line the ``repro`` CLI prints flows through a
:class:`Reporter` — a thin facade over a dedicated ``logging`` logger —
instead of bare ``print()``.  The contract that keeps existing
behaviour (and the CLI tests' byte-for-byte stdout assertions) intact:

* **default** — :meth:`Reporter.out` lines appear on stdout exactly as
  ``print`` produced them: the formatter is ``%(message)s``, nothing
  prepended, newline appended.
* ``--verbose`` — additionally shows :meth:`Reporter.detail` lines
  (progress ticks, per-point timings) at DEBUG level.
* ``--quiet`` — suppresses the report body entirely; only
  :meth:`Reporter.warn` / :meth:`Reporter.error` still reach stderr.

Info/debug go to stdout, warnings and errors to stderr, matching the
``print(..., file=sys.stderr)`` split the CLI used before.  Streams are
looked up at emit time (not bound at handler construction) so pytest's
``capsys`` redirection and shell redirection of an already-running
process both behave.

Because the backend is a real logger (``repro.cli``), embedders can
attach their own handlers, silence it, or re-route it into an
application log without touching this module — set
``configure(managed=False)`` semantics by just not calling
:meth:`Reporter.configure`.
"""

from __future__ import annotations

import logging
import sys

__all__ = ["Reporter", "get_reporter"]


class _DynamicStreamHandler(logging.Handler):
    """Writes ``%(message)s`` + newline to a stream resolved per record.

    Records at WARNING and above go to the *current* ``sys.stderr``,
    the rest to the *current* ``sys.stdout`` — resolved at emit time so
    test harnesses that swap the module attributes capture everything.
    """

    def emit(self, record: logging.LogRecord) -> None:
        try:
            stream = (
                sys.stderr if record.levelno >= logging.WARNING
                else sys.stdout
            )
            stream.write(record.getMessage() + "\n")
        except Exception:  # noqa: BLE001 - reporting must never crash a run
            self.handleError(record)


class Reporter:
    """The CLI's output surface, volume-controlled by --verbose/--quiet."""

    def __init__(self, name: str = "repro.cli") -> None:
        self._logger = logging.getLogger(name)
        self._configured = False

    def configure(self, *, verbose: bool = False, quiet: bool = False) -> None:
        """(Re)install the CLI handler and set the volume.

        Idempotent: repeated CLI invocations in one process (the test
        suite calls ``main()`` dozens of times) reuse a single handler.
        ``quiet`` wins over ``verbose`` if both are passed.
        """
        logger = self._logger
        if not self._configured:
            logger.handlers.clear()
            logger.addHandler(_DynamicStreamHandler())
            logger.propagate = False
            self._configured = True
        if quiet:
            logger.setLevel(logging.WARNING)
        elif verbose:
            logger.setLevel(logging.DEBUG)
        else:
            logger.setLevel(logging.INFO)

    # ------------------------------------------------------------------
    def out(self, message: str = "") -> None:
        """A default-visible report line (the old ``print``)."""
        if not self._configured:
            self.configure()
        self._logger.info(message)

    def detail(self, message: str) -> None:
        """A --verbose-only line (progress ticks, per-phase timings)."""
        if not self._configured:
            self.configure()
        self._logger.debug(message)

    def warn(self, message: str) -> None:
        """A warning — stderr, survives --quiet."""
        if not self._configured:
            self.configure()
        self._logger.warning(message)

    def error(self, message: str) -> None:
        """An error — stderr, survives --quiet (the old
        ``print(..., file=sys.stderr)``)."""
        if not self._configured:
            self.configure()
        self._logger.error(message)

    @property
    def verbose(self) -> bool:
        """True when --verbose is active (callers can gate extra work)."""
        return self._logger.level <= logging.DEBUG and self._configured


_reporter = Reporter()


def get_reporter() -> Reporter:
    """The process-wide CLI reporter."""
    return _reporter
