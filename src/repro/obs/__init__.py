"""Observability backbone: spans, metrics, timelines, diagnostics.

``repro.obs`` is the instrumentation layer the rest of the package
records into — never reads from.  Four pieces:

* :mod:`~repro.obs.trace` — hierarchical wall-clock span tracer with a
  context-manager API and Chrome trace-event export (Perfetto).
* :mod:`~repro.obs.metrics` — counters / gauges / histograms behind one
  ``snapshot()`` / ``merge()`` registry.
* :mod:`~repro.obs.timeline` — converts a finished runtime-engine trace
  into a simulated-time Chrome timeline (device lanes, job rows,
  wait/failure markers).
* :mod:`~repro.obs.env` / :mod:`~repro.obs.report` — environment
  diagnostics (``repro env``) and the logging-backed CLI reporter.

Everything is **off by default**.  :func:`observe` flips on both the
process tracer and the metrics registry; :func:`shutdown` flips them
off and hands back what was collected.  The hard contract, pinned by
``tests/test_obs.py``: enabling changes no numeric output anywhere
(instruments record, algorithms never read them), the disabled path
costs one module-global load per span site, and enabled overhead stays
under 2% on the perf-smoke workloads (gated in CI via
``benchmarks/record.py --overhead``).

Typical use::

    from repro import obs

    tracer, registry = obs.observe()
    result = mapper.map(graph, model)          # spans + metrics recorded
    obs.write_chrome(tracer, "trace.json")     # open in ui.perfetto.dev
    print(registry.snapshot()["mapper.n_simulations"])
    obs.shutdown()
"""

from __future__ import annotations

from typing import Optional, Tuple

from . import env, metrics, report, timeline, trace
from .env import collect_env, format_env
from .metrics import Histogram, MetricsRegistry, get_registry
from .report import Reporter, get_reporter
from .timeline import runtime_trace_to_chrome_events
from .trace import (
    Tracer,
    enabled,
    get_tracer,
    instant,
    span,
    spans_from_chrome,
    to_chrome,
    write_chrome,
)

__all__ = [
    "env",
    "metrics",
    "report",
    "timeline",
    "trace",
    "Tracer",
    "MetricsRegistry",
    "Histogram",
    "Reporter",
    "observe",
    "shutdown",
    "observing",
    "span",
    "instant",
    "enabled",
    "get_tracer",
    "get_registry",
    "get_reporter",
    "to_chrome",
    "write_chrome",
    "spans_from_chrome",
    "runtime_trace_to_chrome_events",
    "collect_env",
    "format_env",
]


def observe(
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
) -> Tuple[Tracer, MetricsRegistry]:
    """Enable tracing *and* metrics for this process; return both."""
    return trace.enable(tracer), metrics.enable(registry)


def shutdown() -> Tuple[Optional[Tracer], Optional[MetricsRegistry]]:
    """Disable both; return whatever was collected (None if off)."""
    return trace.disable(), metrics.disable()


class observing:
    """Context manager form of :func:`observe` / :func:`shutdown`::

        with obs.observing() as (tracer, registry):
            mapper.map(graph, model)
    """

    def __enter__(self) -> Tuple[Tracer, MetricsRegistry]:
        self._pair = observe()
        return self._pair

    def __exit__(self, *exc) -> bool:
        shutdown()
        return False
