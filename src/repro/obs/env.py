"""Environment diagnostics: the bug-report / benchmark-stamp header.

One function, :func:`collect_env`, gathers everything that determines
whether two runs of this codebase are comparable: package version,
Python and numpy versions, BLAS backend, which span kernel the process
will actually use (compiled C vs pure-Python fallback, and whether the
fallback was forced via ``REPRO_PURE_PYTHON``), and coarse host facts
(hostname, machine, CPU count).  ``repro env`` prints it; benchmark
records (``benchmarks/record.py``) embed it so ``BENCH_*.json``
trajectories can be compared across machines with eyes open.
"""

from __future__ import annotations

import os
import platform as _platform
import sys

__all__ = ["collect_env", "format_env"]


def _blas_backend() -> str:
    """Best-effort name of numpy's BLAS backend ("unknown" if opaque)."""
    import numpy as np

    try:  # numpy >= 1.26 exposes the build config as dicts
        cfg = np.show_config(mode="dicts")  # type: ignore[call-arg]
        blas = cfg.get("Build Dependencies", {}).get("blas", {})
        name = blas.get("name", "")
        version = blas.get("version", "")
        if name:
            return f"{name} {version}".strip()
    except Exception:  # noqa: BLE001 - diagnostics must never raise  # repro-lint: disable=EXC001
        pass
    try:
        for section in ("blas_ilp64_opt_info", "blas_opt_info", "blas_info"):
            info = getattr(np.__config__, section, None)
            if info:
                libs = info.get("libraries")
                if libs:
                    return ", ".join(libs)
    except Exception:  # noqa: BLE001  # repro-lint: disable=EXC001
        pass
    return "unknown"


def collect_env() -> dict:
    """Everything that makes runs (in)comparable, as a flat JSON-safe dict."""
    import numpy as np

    from .. import __version__
    from ..evaluation._ckernel import kernel_status

    kernel = kernel_status()
    return {
        "repro": __version__,
        "python": sys.version.split()[0],
        "implementation": _platform.python_implementation(),
        "numpy": np.__version__,
        "blas": _blas_backend(),
        "kernel": kernel["kernel"],
        "kernel_so": kernel["so_path"],
        "kernel_cflags": kernel["cflags"],
        "pure_python_forced": kernel["pure_python_forced"],
        "repro_pure_python": os.environ.get("REPRO_PURE_PYTHON") or "",
        "hostname": _platform.node(),
        "os": f"{_platform.system()} {_platform.release()}",
        "machine": _platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def format_env(env: dict) -> str:
    """``key : value`` lines, aligned — what ``repro env`` prints."""
    width = max(len(k) for k in env)
    return "\n".join(
        f"{k:<{width}} : {'' if v is None else v}" for k, v in env.items()
    )
