"""Model-based evaluation: cost model, flat kernel, delta evaluation,
schedule suites, evaluator, traces."""

from .cache import CachedEvaluator
from .costmodel import AREA_TOL, INFEASIBLE, CostModel
from .delta import DeltaEvaluator
from .energy import JOULES_PER_MB, EnergyModel, energy_joules
from .evaluator import MappingEvaluator
from .kernel import FlatModel, simulate_flat, simulate_population, simulate_span
from .schedules import ScheduleSuite, bfs_schedule, random_topological_schedule
from .trace import ScheduleTrace, TaskTrace, render_gantt, simulate_trace

__all__ = [
    "INFEASIBLE",
    "AREA_TOL",
    "CachedEvaluator",
    "CostModel",
    "DeltaEvaluator",
    "FlatModel",
    "simulate_flat",
    "simulate_population",
    "simulate_span",
    "MappingEvaluator",
    "JOULES_PER_MB",
    "EnergyModel",
    "energy_joules",
    "ScheduleSuite",
    "bfs_schedule",
    "random_topological_schedule",
    "ScheduleTrace",
    "TaskTrace",
    "render_gantt",
    "simulate_trace",
]
