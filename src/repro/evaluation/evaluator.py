"""Mapping evaluator: the single interface all mappers share.

:class:`MappingEvaluator` bundles a graph, a platform, the precomputed
:class:`~repro.evaluation.costmodel.CostModel` and a
:class:`~repro.evaluation.schedules.ScheduleSuite`.  It distinguishes

- the **construction makespan** — breadth-first schedule only, the fast
  deterministic value the greedy decomposition mappers (and the GA fitness)
  re-evaluate thousands of times (Sec. III-A: "we fully re-evaluate the
  system for each subgraph replacement"), and
- the **reported makespan** — the minimum over the full schedule suite
  (BFS + 100 random, Sec. IV-A), used for the figures and tables.

The *relative improvement* metric follows Sec. IV-A: average positive
relative improvement over the pure-CPU mapping, deteriorations counted as
zero.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..graphs.taskgraph import TaskGraph
from ..platform.platform import Platform
from .costmodel import INFEASIBLE, CostModel
from .schedules import ScheduleSuite

__all__ = ["MappingEvaluator"]


class MappingEvaluator:
    """Evaluate mappings of one graph on one platform."""

    def __init__(
        self,
        graph: TaskGraph,
        platform: Platform,
        *,
        suite: Optional[ScheduleSuite] = None,
        rng: Optional[np.random.Generator] = None,
        n_random_schedules: int = 100,
    ) -> None:
        self.graph = graph
        self.platform = platform
        self.model = CostModel(graph, platform)
        if suite is None:
            suite = ScheduleSuite.paper(
                graph,
                rng if rng is not None else np.random.default_rng(0),
                n_random=n_random_schedules,
            )
        self.suite = suite
        self._cpu_mapping = np.zeros(self.model.n, dtype=np.int64)
        self._cpu_construction: Optional[float] = None
        self._cpu_reported: Optional[float] = None

    # ------------------------------------------------------------------
    @property
    def n_tasks(self) -> int:
        return self.model.n

    @property
    def n_devices(self) -> int:
        return self.model.m

    @property
    def n_evaluations(self) -> int:
        """Model evaluations so far: full simulations + delta suffix evals.

        Each incremental suffix re-evaluation answers one candidate-move
        query (the paper's "full re-evaluation per replacement"), so it
        counts as one evaluation here; see :attr:`n_equivalent_evaluations`
        for the cost-weighted view.
        """
        return self.model.n_simulations + self.model.n_delta_evaluations

    @property
    def n_full_simulations(self) -> int:
        """Full O(V+E) scratch simulations only."""
        return self.model.n_simulations

    @property
    def n_delta_evaluations(self) -> int:
        """Incremental suffix re-evaluations only."""
        return self.model.n_delta_evaluations

    @property
    def n_equivalent_evaluations(self) -> float:
        """Evaluation effort in units of one full O(V+E) simulation.

        Full simulations count 1; a delta evaluation counts its suffix
        fraction (``suffix length / n``).
        """
        return self.model.n_simulations + self.model.delta_work

    def cpu_mapping(self) -> np.ndarray:
        """The all-host default mapping (device 0 for every task)."""
        return self._cpu_mapping.copy()

    # ------------------------------------------------------------------
    def construction_makespan(self, mapping: Sequence[int]) -> float:
        """Fast single-schedule (BFS) makespan used during construction."""
        return self.model.simulate(mapping)

    def reported_makespan(self, mapping: Sequence[int]) -> float:
        """Minimum makespan over the full schedule suite (paper Sec. IV-A)."""
        if not self.model.is_feasible(mapping):
            return INFEASIBLE
        best = INFEASIBLE
        for order in self.suite.orders:
            ms = self.model.simulate(mapping, order, check_feasibility=False)
            if ms < best:
                best = ms
        return best

    # ------------------------------------------------------------------
    @property
    def cpu_construction_makespan(self) -> float:
        if self._cpu_construction is None:
            self._cpu_construction = self.construction_makespan(self._cpu_mapping)
        return self._cpu_construction

    @property
    def cpu_reported_makespan(self) -> float:
        if self._cpu_reported is None:
            self._cpu_reported = self.reported_makespan(self._cpu_mapping)
        return self._cpu_reported

    def relative_improvement(self, mapping: Sequence[int]) -> float:
        """Positive relative improvement vs the pure-CPU mapping.

        ``max(0, (cpu - mapped) / cpu)`` on reported makespans;
        deteriorations count as zero (Sec. IV-A: one can always default to
        the pure CPU mapping).
        """
        base = self.cpu_reported_makespan
        ms = self.reported_makespan(mapping)
        if not np.isfinite(ms) or ms >= base:
            return 0.0
        return float((base - ms) / base)

    def is_feasible(self, mapping: Sequence[int]) -> bool:
        return self.model.is_feasible(mapping)
