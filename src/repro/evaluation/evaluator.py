"""Mapping evaluator: the single interface all mappers share.

:class:`MappingEvaluator` bundles a graph, a platform, the precomputed
:class:`~repro.evaluation.costmodel.CostModel` and a
:class:`~repro.evaluation.schedules.ScheduleSuite`.  It distinguishes

- the **construction makespan** — breadth-first schedule only, the fast
  deterministic value the greedy decomposition mappers (and the GA fitness)
  re-evaluate thousands of times (Sec. III-A: "we fully re-evaluate the
  system for each subgraph replacement"), and
- the **reported makespan** — the minimum over the full schedule suite
  (BFS + 100 random, Sec. IV-A), used for the figures and tables.

Population-based mappers evaluate whole generations through
:meth:`MappingEvaluator.construction_makespans`: a ``(P, n)`` array of
genomes goes through **genome dedup** (identical rows are simulated once
and share the exact value) and one :meth:`CostModel.simulate_many` batch
call, which amortizes the Python/ctypes dispatch that dominates scalar
evaluation across the whole population.  With the C kernel loaded, dedup
happens *inside* the native batch entry (``repro_span_batch_dedup``:
open-addressing on a 64-bit row hash, duplicates verified by full row
comparison — a collision costs a probe, never a wrong value); on the
pure-Python path rows are stable-sorted by a weighted checksum and
verified against their sorted neighbour, so sharing is never
speculative either way.  Dedup fires whenever a generation contains
repeated genomes — elitist GAs recreate parents through crossover-less
pairs and converged populations concentrate on few genomes — and a
converged NSGA-II generation routinely collapses to a fraction of its
nominal width.  Per-lane results are bit-identical to
:meth:`construction_makespan` of that row.

The *relative improvement* metric follows Sec. IV-A: average positive
relative improvement over the pure-CPU mapping, deteriorations counted as
zero.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..graphs.taskgraph import TaskGraph
from ..platform.platform import Platform
from .costmodel import INFEASIBLE, CostModel
from .schedules import ScheduleSuite

__all__ = ["MappingEvaluator"]


class MappingEvaluator:
    """Evaluate mappings of one graph on one platform."""

    def __init__(
        self,
        graph: TaskGraph,
        platform: Platform,
        *,
        suite: Optional[ScheduleSuite] = None,
        rng: Optional[np.random.Generator] = None,
        n_random_schedules: int = 100,
    ) -> None:
        self.graph = graph
        self.platform = platform
        self.model = CostModel(graph, platform)
        if suite is None:
            suite = ScheduleSuite.paper(
                graph,
                rng if rng is not None else np.random.default_rng(0),
                n_random=n_random_schedules,
            )
        self.suite = suite
        self._cpu_mapping = np.zeros(self.model.n, dtype=np.int64)
        self._cpu_construction: Optional[float] = None
        self._cpu_reported: Optional[float] = None
        # fixed random weights for the vectorized genome checksum used by
        # construction_makespans' dedup (int64 wraparound arithmetic)
        self._hash_w = np.random.default_rng(0x5EED).integers(
            np.iinfo(np.int64).min,
            np.iinfo(np.int64).max,
            size=self.model.n,
            dtype=np.int64,
        )

    # ------------------------------------------------------------------
    @property
    def n_tasks(self) -> int:
        return self.model.n

    @property
    def n_devices(self) -> int:
        return self.model.m

    @property
    def n_evaluations(self) -> int:
        """Model evaluations so far: full, delta and batched evaluations.

        Each incremental suffix re-evaluation answers one candidate-move
        query (the paper's "full re-evaluation per replacement"), so it
        counts as one evaluation here, as does each batched population
        lane; see :attr:`n_equivalent_evaluations` for the cost-weighted
        view.
        """
        return (
            self.model.n_simulations
            + self.model.n_delta_evaluations
            + self.model.n_batched_evaluations
        )

    @property
    def n_full_simulations(self) -> int:
        """Full O(V+E) scratch simulations only (scalar entry)."""
        return self.model.n_simulations

    @property
    def n_delta_evaluations(self) -> int:
        """Incremental suffix re-evaluations only."""
        return self.model.n_delta_evaluations

    @property
    def n_batched_evaluations(self) -> int:
        """Population lanes evaluated through the batch entry."""
        return self.model.n_batched_evaluations

    @property
    def n_batch_calls(self) -> int:
        """Batch-entry calls that simulated at least one lane."""
        return self.model.n_batch_calls

    @property
    def n_equivalent_evaluations(self) -> float:
        """Evaluation effort in units of one full O(V+E) simulation.

        Full simulations and batched lanes count 1; a delta evaluation
        counts its suffix fraction (``suffix length / n``).
        """
        return (
            self.model.n_simulations
            + self.model.delta_work
            + self.model.n_batched_evaluations
        )

    def cpu_mapping(self) -> np.ndarray:
        """The all-host default mapping (device 0 for every task)."""
        return self._cpu_mapping.copy()

    # ------------------------------------------------------------------
    def construction_makespan(self, mapping: Sequence[int]) -> float:
        """Fast single-schedule (BFS) makespan used during construction."""
        return self.model.simulate(mapping)

    def construction_makespans(self, mappings: np.ndarray) -> np.ndarray:
        """Construction makespans of every row of a ``(P, n)`` population.

        Identical genomes are deduplicated (simulated once, shared) and
        the distinct rows go through one :meth:`CostModel.simulate_many`
        batch call.  Per row, the result is bit-identical to
        :meth:`construction_makespan` (:data:`~repro.evaluation.costmodel.INFEASIBLE`
        for area-violating rows) — see the module docstring.
        """
        pop = np.ascontiguousarray(mappings, dtype=np.int64)
        if pop.ndim != 2:
            raise ValueError(f"expected a (P, n) population, got {pop.shape}")
        P = pop.shape[0]
        if self.model._ck is not None:  # noqa: SLF001 - package-internal
            # the C kernel dedups in-kernel (repro_span_batch_dedup):
            # one native call per population, no Python grouping work
            return self.model.simulate_many(pop, dedup=True)
        if P <= 1:
            return self.model.simulate_many(pop)
        # vectorized dedup: stable-sort rows by a 64-bit weighted checksum,
        # then open a new lane wherever the checksum changes OR the full
        # row differs from its sorted neighbour.  Equal rows hash equally,
        # so they are adjacent (stable within a run) and share one lane;
        # an (astronomically unlikely) checksum collision between distinct
        # rows fails the exact row comparison and gets its own lane —
        # collisions cost a lane, never a wrong value.
        h = pop @ self._hash_w
        sort_idx = np.argsort(h, kind="stable")
        hs = h[sort_idx]
        new_lane = np.empty(P, dtype=bool)
        new_lane[0] = True
        np.not_equal(hs[1:], hs[:-1], out=new_lane[1:])
        if new_lane.all():  # all checksums distinct => all rows distinct
            return self.model.simulate_many(pop)
        rows = pop[sort_idx]
        new_lane[1:] |= (rows[1:] != rows[:-1]).any(axis=1)
        lane_id = np.cumsum(new_lane) - 1
        ms = self.model.simulate_many(np.ascontiguousarray(rows[new_lane]))
        out = np.empty(P)
        out[sort_idx] = ms[lane_id]
        return out

    def reported_makespan(self, mapping: Sequence[int]) -> float:
        """Minimum makespan over the full schedule suite (paper Sec. IV-A)."""
        if not self.model.is_feasible(mapping):
            return INFEASIBLE
        best = INFEASIBLE
        for order in self.suite.orders:
            ms = self.model.simulate(mapping, order, check_feasibility=False)
            if ms < best:
                best = ms
        return best

    # ------------------------------------------------------------------
    @property
    def cpu_construction_makespan(self) -> float:
        if self._cpu_construction is None:
            self._cpu_construction = self.construction_makespan(self._cpu_mapping)
        return self._cpu_construction

    @property
    def cpu_reported_makespan(self) -> float:
        if self._cpu_reported is None:
            self._cpu_reported = self.reported_makespan(self._cpu_mapping)
        return self._cpu_reported

    def relative_improvement(self, mapping: Sequence[int]) -> float:
        """Positive relative improvement vs the pure-CPU mapping.

        ``max(0, (cpu - mapped) / cpu)`` on reported makespans;
        deteriorations count as zero (Sec. IV-A: one can always default to
        the pure CPU mapping).
        """
        base = self.cpu_reported_makespan
        ms = self.reported_makespan(mapping)
        if not np.isfinite(ms) or ms >= base:
            return 0.0
        return float((base - ms) / base)

    def is_feasible(self, mapping: Sequence[int]) -> bool:
        return self.model.is_feasible(mapping)
