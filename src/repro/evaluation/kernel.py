"""Flat-array cost kernel: the tight inner loop of the makespan simulation.

:class:`FlatModel` flattens the per-graph tables of
:class:`~repro.evaluation.costmodel.CostModel` onto CSR-style contiguous
numpy arrays:

- ``pred_ptr``/``pred_src`` — CSR predecessor structure: the predecessors
  of task ``i`` are ``pred_src[pred_ptr[i]:pred_ptr[i + 1]]``;
- ``pred_trans`` — one flattened ``m * m`` transfer table per edge
  (``pred_trans[e, du * m + dv]`` = seconds from device ``du`` to ``dv``;
  on a topology-aware platform these are the *routed effective* costs,
  so the kernel never sees links, routes or hops — lint rule KER002
  pins that);
- ``exec``/``fill``/``initial``/``final`` — ``(n, m)`` contiguous
  ``float64`` tables (execution, pipeline fill, host→device input,
  device→host result).

The simulation itself is an inherently *sequential* list-scheduling
recurrence (slot state couples every step), so it cannot be vectorized
across tasks; the arrays are therefore mirrored once into flat Python
lists (``exec_l[i * m + d]`` etc.) which CPython indexes several times
faster than ndarray scalars.  :func:`simulate_span` is the one loop body
shared by every evaluation path — full scratch simulation (span from
position 0) and incremental suffix re-simulation
(:mod:`repro.evaluation.delta`) — which makes the scratch/delta exactness
contract structural: both run literally the same statements.

While tasks cannot be vectorized, independent *mappings* can: the
recurrence is embarrassingly parallel across genomes.
:func:`simulate_batch` runs B mappings as lockstep numpy lanes over the
shared schedule order (one elementwise operation per scalar statement),
and :func:`simulate_population` is its from-scratch entry for whole
``(B, n)`` populations — the fitness kernel of the metaheuristic
mappers (``CostModel.simulate_many`` /
``MappingEvaluator.construction_makespans``, which prefer the C
kernel's ``repro_span_batch`` lane loop when compiled).

Exactness contract: :func:`simulate_span` performs bit-for-bit the same
float64 operations in the same order as the legacy nested-list walk
(kept as ``CostModel._simulate_reference`` and pinned by
``tests/test_kernel_delta.py``), so kernel selection is transparent —
it is an optimization, never an approximation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["FlatModel", "simulate_span", "simulate_batch", "INF"]

INF = float("inf")

# ---------------------------------------------------------------------------
# Python-side mirrors of the C batch kernel's lane/dedup constants.  The
# in-kernel genome dedup (``repro_span_batch_dedup`` in
# :mod:`repro.evaluation._ckernel`) hashes rows with 64-bit FNV-1a and
# requires a power-of-two probe table of at least ``DEDUP_TABLE_FACTOR``
# times the lane count; ``CostModel.simulate_many`` sizes its table from
# these mirrors.  ``_ckernel.source_consistency_problems()`` (surfaced as
# lint rule KER001 and pinned by ``tests/test_ckernel_sanitize.py``)
# verifies the C source literally embeds the same values, so an edit to
# one side without the other cannot land silently.
# ---------------------------------------------------------------------------

#: FNV-1a 64-bit offset basis used by the in-kernel row hash
DEDUP_FNV_OFFSET = 1469598103934665603
#: FNV-1a 64-bit prime used by the in-kernel row hash
DEDUP_FNV_PRIME = 1099511628211
#: the dedup probe table must hold at least this many slots per lane
DEDUP_TABLE_FACTOR = 2

__all__ += ["DEDUP_FNV_OFFSET", "DEDUP_FNV_PRIME", "DEDUP_TABLE_FACTOR"]


class FlatModel:
    """CSR/flat-array view of one ``CostModel``'s tables (see module doc)."""

    __slots__ = (
        "n",
        "m",
        "pred_ptr",
        "pred_src",
        "pred_trans",
        "exec",
        "fill",
        "initial",
        "final",
        "streaming",
        "serializes",
        "slots",
        "slot_ptr",
        "n_slots",
        "has_initial",
        "has_final",
        "has_initial_l",
        "has_final_l",
        "streaming_u8",
        "serializes_u8",
        # interpreter-friendly flat list mirrors (built once, read-only)
        "exec_l",
        "fill_l",
        "initial_l",
        "final_l",
        "pred_l",
        "streaming_l",
        "serializes_l",
        "slot_ptr_l",
    )

    def __init__(
        self,
        *,
        exec_table: np.ndarray,
        fill_table: np.ndarray,
        initial_table: np.ndarray,
        final_table: np.ndarray,
        pred_lists: Sequence[Sequence[Tuple[int, Sequence[Sequence[float]]]]],
        streaming: Sequence[bool],
        serializes: Sequence[bool],
        slots: Sequence[int],
    ) -> None:
        n, m = exec_table.shape
        self.n = n
        self.m = m
        self.exec = np.ascontiguousarray(exec_table, dtype=np.float64)
        self.fill = np.ascontiguousarray(fill_table, dtype=np.float64)
        self.initial = np.ascontiguousarray(initial_table, dtype=np.float64)
        self.final = np.ascontiguousarray(final_table, dtype=np.float64)

        ptr = np.zeros(n + 1, dtype=np.int64)
        src: List[int] = []
        trans_rows: List[np.ndarray] = []
        for i, plist in enumerate(pred_lists):
            for p, row in plist:
                src.append(p)
                trans_rows.append(np.asarray(row, dtype=np.float64).ravel())
            ptr[i + 1] = len(src)
        self.pred_ptr = ptr
        self.pred_src = np.asarray(src, dtype=np.int64)
        self.pred_trans = (
            np.vstack(trans_rows)
            if trans_rows
            else np.empty((0, m * m), dtype=np.float64)
        )

        self.streaming = np.asarray(streaming, dtype=bool)
        self.serializes = np.asarray(serializes, dtype=bool)
        self.streaming_u8 = self.streaming.astype(np.uint8)
        self.serializes_u8 = self.serializes.astype(np.uint8)
        self.slots = np.asarray(slots, dtype=np.int64)
        # serializing devices get a contiguous slot range in one flat
        # availability vector; non-serializing (spatial) devices get none
        slot_ptr = np.zeros(m + 1, dtype=np.int64)
        for d in range(m):
            width = int(self.slots[d]) if self.serializes[d] else 0
            slot_ptr[d + 1] = slot_ptr[d] + width
        self.slot_ptr = slot_ptr
        self.n_slots = int(slot_ptr[-1])

        # batch-kernel helpers: which tasks actually pay host I/O
        self.has_initial = np.any(self.initial != 0.0, axis=1)
        self.has_final = np.any(self.final != 0.0, axis=1)
        self.has_initial_l = self.has_initial.tolist()
        self.has_final_l = self.has_final.tolist()

        # flat Python mirrors for the interpreter loop
        self.exec_l = self.exec.ravel().tolist()
        self.fill_l = self.fill.ravel().tolist()
        self.initial_l = self.initial.ravel().tolist()
        self.final_l = self.final.ravel().tolist()
        trans_l = self.pred_trans.tolist()
        src_l = self.pred_src.tolist()
        self.pred_l: List[List[Tuple[int, List[float]]]] = [
            [
                (src_l[e], trans_l[e])
                for e in range(int(ptr[i]), int(ptr[i + 1]))
            ]
            for i in range(n)
        ]
        self.streaming_l = self.streaming.tolist()
        self.serializes_l = self.serializes.tolist()
        self.slot_ptr_l = slot_ptr.tolist()

    # ------------------------------------------------------------------
    def fresh_avail(self) -> List[float]:
        """A zeroed flat slot-availability vector."""
        return [0.0] * self.n_slots


def simulate_span(
    flat: FlatModel,
    mapping: List[int],
    order: Sequence[int],
    k: int,
    start: List[float],
    finish: List[float],
    avail: List[float],
    makespan: float,
    *,
    contention: bool = True,
    bound: float = INF,
) -> float:
    """Simulate schedule positions ``k .. len(order)-1`` in place.

    ``start``/``finish`` must hold valid values for every task scheduled
    before position ``k`` (they are read for predecessors and written for
    the span's tasks); ``avail`` is the flat slot-availability vector at
    position ``k`` and ``makespan`` the running max task-end over
    positions ``< k``.  Returns the final makespan, or ``inf`` as soon as
    the running makespan reaches ``bound`` (the caller's
    branch-and-bound cutoff: max is monotone, so the final value could
    only be larger and an exact result is not needed to reject the move).

    The float operations replicate ``CostModel._simulate_reference``
    bit-for-bit — see the module docstring's exactness contract.
    """
    m = flat.m
    exec_l = flat.exec_l
    fill_l = flat.fill_l
    initial_l = flat.initial_l
    final_l = flat.final_l
    pred_l = flat.pred_l
    streaming = flat.streaming_l
    serializes = flat.serializes_l
    slot_ptr = flat.slot_ptr_l

    for j in range(k, len(order)):
        i = order[j]
        d = mapping[i]
        row = i * m
        ready = initial_l[row + d]
        drain = 0.0
        for p, trans in pred_l[i]:
            dp = mapping[p]
            if dp == d and streaming[d]:
                # on-chip streaming: start after the producer's pipeline
                # is filled; cannot finish before the producer finishes.
                r = start[p] + fill_l[p * m + dp]
                fp = finish[p]
                if fp > drain:
                    drain = fp
            else:
                r = finish[p] + trans[dp * m + d]
            if r > ready:
                ready = r
        st = ready
        slot = -1
        if contention and serializes[d]:
            s0 = slot_ptr[d]
            s1 = slot_ptr[d + 1]
            slot = s0
            earliest = avail[s0]
            for q in range(s0 + 1, s1):
                v = avail[q]
                if v < earliest:
                    earliest = v
                    slot = q
            if earliest > ready:
                st = earliest
        fin = st + exec_l[row + d]
        if drain > fin:
            fin = drain
        start[i] = st
        finish[i] = fin
        if slot >= 0:
            avail[slot] = fin
        end = fin + final_l[row + d]
        if end > makespan:
            makespan = end
            if makespan >= bound:
                return INF
    return makespan


def simulate_batch(
    flat: FlatModel,
    map_blk: np.ndarray,
    order: Sequence[int],
    k: int,
    start_blk: np.ndarray,
    finish_blk: np.ndarray,
    avail_blk: np.ndarray,
    makespan: np.ndarray,
    *,
    contention: bool = True,
) -> np.ndarray:
    """Vectorized span: simulate B mappings in lockstep over positions.

    Lane ``b`` simulates the mapping ``map_blk[:, b]``; state arrays are
    task-major (``(n, B)`` / ``(n_slots, B)``) so each position touches
    contiguous rows.  ``start_blk``/``finish_blk`` must hold each lane's
    valid values for positions before ``k`` (for a shared base prefix:
    the base values broadcast), ``avail_blk`` the slot state at ``k`` and
    ``makespan`` the running prefix max per lane.  Returns the per-lane
    makespans (the ``makespan`` array, updated in place).

    Every elementwise operation mirrors one scalar statement of
    :func:`simulate_span` in the same order, so each lane's result is
    bit-identical to a scalar simulation of that lane's mapping
    (``np.argmin`` keeps the scalar loop's first-smallest-slot
    tie-break).  Lanes never interact — this is pure SIMD over candidate
    moves, the payoff of the CSR/flat-array layout.
    """
    m = flat.m
    exec_t = flat.exec
    fill_t = flat.fill
    initial_t = flat.initial
    final_t = flat.final
    has_initial = flat.has_initial_l
    has_final = flat.has_final_l
    pred_ptr = flat.pred_ptr
    pred_src = flat.pred_src
    pred_trans = flat.pred_trans
    streaming_np = flat.streaming
    serializes_l = flat.serializes_l
    slot_ptr = flat.slot_ptr_l
    any_streaming = bool(streaming_np.any())
    # contention=False drops serialization exactly like the scalar loop:
    # slot = -1 on every position, no avail reads or writes
    serial_devs = (
        [d for d in range(m) if serializes_l[d]] if contention else []
    )

    B = map_blk.shape[1]
    zeros = np.zeros(B)

    for j in range(k, len(order)):
        i = order[j]
        d = map_blk[i]
        ready = initial_t[i].take(d) if has_initial[i] else zeros.copy()
        e0 = int(pred_ptr[i])
        e1 = int(pred_ptr[i + 1])
        if any_streaming and e1 > e0:
            stream_d = streaming_np.take(d)
            drain = None
            for e in range(e0, e1):
                p = int(pred_src[e])
                dp = map_blk[p]
                fp = finish_blk[p]
                r = fp + pred_trans[e].take(dp * m + d)
                mask = stream_d & (dp == d)
                if mask.any():
                    rs = start_blk[p] + fill_t[p].take(dp)
                    r = np.where(mask, rs, r)
                    fp_masked = np.where(mask, fp, 0.0)
                    drain = (
                        fp_masked
                        if drain is None
                        else np.maximum(drain, fp_masked)
                    )
                ready = np.maximum(ready, r)
        else:
            drain = None
            for e in range(e0, e1):
                p = int(pred_src[e])
                dp = map_blk[p]
                r = finish_blk[p] + pred_trans[e].take(dp * m + d)
                ready = np.maximum(ready, r)
        st = ready
        scatters = []
        for dev in serial_devs:
            mask = d == dev
            if not mask.any():
                continue
            s0 = slot_ptr[dev]
            s1 = slot_ptr[dev + 1]
            sub = avail_blk[s0:s1]
            sl = np.argmin(sub, axis=0)
            earliest = sub[sl, np.arange(B)]
            st = np.where(mask & (earliest > ready), earliest, st)
            scatters.append((s0, sl, mask))
        fin = st + exec_t[i].take(d)
        if drain is not None:
            fin = np.maximum(fin, drain)
        start_blk[i] = st
        finish_blk[i] = fin
        for s0, sl, mask in scatters:
            lanes = np.nonzero(mask)[0]
            avail_blk[s0 + sl[lanes], lanes] = fin[lanes]
        end = fin + final_t[i].take(d) if has_final[i] else fin
        np.maximum(makespan, end, out=makespan)
    return makespan


def simulate_flat(
    flat: FlatModel,
    mapping: List[int],
    order: Sequence[int],
    *,
    contention: bool = True,
    out_start: Optional[List[float]] = None,
    out_finish: Optional[List[float]] = None,
) -> float:
    """Full scratch simulation (a span from position 0 on fresh state)."""
    start = [0.0] * flat.n if out_start is None else out_start
    finish = [0.0] * flat.n if out_finish is None else out_finish
    return simulate_span(
        flat,
        mapping,
        order,
        0,
        start,
        finish,
        flat.fresh_avail(),
        0.0,
        contention=contention,
    )


def simulate_population(
    flat: FlatModel,
    pop: np.ndarray,
    order: Sequence[int],
    *,
    contention: bool = True,
) -> np.ndarray:
    """Scratch-simulate every row of a ``(B, n)`` population in lockstep.

    The pure-Python counterpart of the C kernel's ``repro_span_batch``:
    :func:`simulate_batch` from position 0 on fresh state, one vector
    lane per genome.  Each lane's makespan is bit-identical to a scalar
    :func:`simulate_flat` of that row (feasibility is the caller's
    concern — rows are simulated unconditionally).
    """
    B = pop.shape[0]
    map_blk = np.ascontiguousarray(pop.T)
    return simulate_batch(
        flat,
        map_blk,
        order,
        0,
        np.zeros((flat.n, B)),
        np.zeros((flat.n, B)),
        np.zeros((flat.n_slots, B)),
        np.zeros(B),
        contention=contention,
    )


__all__.extend(["simulate_flat", "simulate_population"])
