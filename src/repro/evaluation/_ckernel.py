"""Optional compiled C version of the flat-array cost kernel.

The list-scheduling recurrence is inherently sequential, so the pure
Python kernel (:mod:`repro.evaluation.kernel`) is bound by interpreter
dispatch (~1-2 us per schedule position).  This module compiles the very
same loop — statement for statement — to native code with the system C
compiler and loads it via :mod:`ctypes`:

- no third-party dependency: only ``cc``/``gcc``/``clang`` if present;
- compiled once per source version into a per-user cache directory
  (atomic rename, safe under concurrent workers);
- strict IEEE semantics: ``-ffp-contract=off`` and no fast-math, so
  every double operation matches CPython float arithmetic bit for bit
  (pinned against ``CostModel._simulate_reference`` by
  ``tests/test_kernel_delta.py``);
- anything failing (no compiler, sandboxed filesystem, load error)
  degrades silently to the pure Python kernel — the C path is an
  optimization, never a requirement.

Set ``REPRO_PURE_PYTHON=1`` to force the Python kernel (used by the
test-suite to cover both paths).

Exposed entry points (see the C source below for contracts):

- ``repro_span``      — full scratch simulation into caller buffers;
- ``repro_rebuild``   — scratch simulation recording per-position
  prefix snapshots (slot availability + running makespan) for the
  incremental evaluator;
- ``repro_eval_move`` — suffix-only re-simulation of one candidate
  move against the snapshotted base, with bound-abort.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import sys
import tempfile
from typing import Optional

__all__ = ["CKernel", "ReproCtx", "ReproDelta", "load_ckernel"]

_C_SOURCE = r"""
#include <math.h>
#include <stddef.h>
#include <stdint.h>

typedef struct {
    int64_t n, m, n_slots;
    const double *exec_t;     /* n*m   */
    const double *fill_t;     /* n*m   */
    const double *initial_t;  /* n*m   */
    const double *final_t;    /* n*m   */
    const int64_t *pred_ptr;  /* n+1   */
    const int64_t *pred_src;  /* E     */
    const double *pred_trans; /* E*m*m */
    const uint8_t *streaming; /* m     */
    const uint8_t *serializes;/* m     */
    const int64_t *slot_ptr;  /* m+1   */
} ReproCtx;

typedef struct {
    int64_t *mapping;          /* n, mutated and restored by eval_move */
    const int64_t *order;      /* n */
    const int64_t *pos;        /* n: task -> schedule position */
    const double *base_start;  /* n */
    const double *base_finish; /* n */
    double *ts;                /* n workspace (suffix values) */
    double *tf;                /* n workspace */
    const double *snap_avail;  /* n * n_slots prefix snapshots */
    const double *pre_ms;      /* n prefix-max ends */
    double *avail_ws;          /* n_slots workspace */
    int64_t *old_ws;           /* >= max subgraph size workspace */
} ReproDelta;

/* One loop body for every path; mirrors kernel.simulate_span statement
 * for statement (same op order => bit-identical doubles).  When pos is
 * NULL every predecessor reads ts/tf; otherwise positions before k read
 * the base arrays (incremental suffix mode, no restore needed). */
static double span_core(const ReproCtx *c, const int64_t *mapping,
                        const int64_t *order, const int64_t *pos, int64_t k,
                        const double *base_start, const double *base_finish,
                        double *ts, double *tf, double *avail,
                        double makespan, int contention, double bound)
{
    const int64_t n = c->n, m = c->m;
    const int use_base = (pos != NULL);
    for (int64_t j = k; j < n; j++) {
        const int64_t i = order[j];
        const int64_t d = mapping[i];
        const int64_t row = i * m;
        double ready = c->initial_t[row + d];
        double drain = 0.0;
        const int64_t e1 = c->pred_ptr[i + 1];
        for (int64_t e = c->pred_ptr[i]; e < e1; e++) {
            const int64_t p = c->pred_src[e];
            const int64_t dp = mapping[p];
            const int base_p = use_base && pos[p] < k;
            double r;
            if (dp == d && c->streaming[d]) {
                const double sp = base_p ? base_start[p] : ts[p];
                const double fp = base_p ? base_finish[p] : tf[p];
                r = sp + c->fill_t[p * m + dp];
                if (fp > drain) drain = fp;
            } else {
                const double fp = base_p ? base_finish[p] : tf[p];
                r = fp + c->pred_trans[e * m * m + dp * m + d];
            }
            if (r > ready) ready = r;
        }
        double st = ready;
        int64_t slot = -1;
        if (contention && c->serializes[d]) {
            const int64_t s0 = c->slot_ptr[d], s1 = c->slot_ptr[d + 1];
            slot = s0;
            double earliest = avail[s0];
            for (int64_t q = s0 + 1; q < s1; q++) {
                if (avail[q] < earliest) { earliest = avail[q]; slot = q; }
            }
            if (earliest > ready) st = earliest;
        }
        double fin = st + c->exec_t[row + d];
        if (drain > fin) fin = drain;
        ts[i] = st;
        tf[i] = fin;
        if (slot >= 0) avail[slot] = fin;
        const double end = fin + c->final_t[row + d];
        if (end > makespan) {
            makespan = end;
            if (makespan >= bound) return INFINITY;
        }
    }
    return makespan;
}

double repro_span(const ReproCtx *c, const int64_t *mapping,
                  const int64_t *order, double *start, double *finish,
                  double *avail, int contention)
{
    for (int64_t i = 0; i < c->n; i++) { start[i] = 0.0; finish[i] = 0.0; }
    for (int64_t s = 0; s < c->n_slots; s++) avail[s] = 0.0;
    return span_core(c, mapping, order, (const int64_t *)0, 0,
                     (const double *)0, (const double *)0,
                     start, finish, avail, 0.0, contention, INFINITY);
}

/* Scratch simulation of the delta base that additionally records, for
 * every position, the slot availability *before* it and the running
 * prefix makespan.  Duplicates span_core's body plus the two recording
 * statements (kept adjacent so the exactness contract stays auditable). */
double repro_rebuild(const ReproCtx *c, const ReproDelta *d,
                     double *start, double *finish,
                     double *snap_avail, double *pre_ms, double *avail)
{
    const int64_t n = c->n, m = c->m, n_slots = c->n_slots;
    const int64_t *mapping = d->mapping;
    const int64_t *order = d->order;
    for (int64_t i = 0; i < n; i++) { start[i] = 0.0; finish[i] = 0.0; }
    for (int64_t s = 0; s < n_slots; s++) avail[s] = 0.0;
    double makespan = 0.0;
    for (int64_t j = 0; j < n; j++) {
        for (int64_t s = 0; s < n_slots; s++)
            snap_avail[j * n_slots + s] = avail[s];
        pre_ms[j] = makespan;
        const int64_t i = order[j];
        const int64_t d_ = mapping[i];
        const int64_t row = i * m;
        double ready = c->initial_t[row + d_];
        double drain = 0.0;
        const int64_t e1 = c->pred_ptr[i + 1];
        for (int64_t e = c->pred_ptr[i]; e < e1; e++) {
            const int64_t p = c->pred_src[e];
            const int64_t dp = mapping[p];
            double r;
            if (dp == d_ && c->streaming[d_]) {
                r = start[p] + c->fill_t[p * m + dp];
                if (finish[p] > drain) drain = finish[p];
            } else {
                r = finish[p] + c->pred_trans[e * m * m + dp * m + d_];
            }
            if (r > ready) ready = r;
        }
        double st = ready;
        int64_t slot = -1;
        if (c->serializes[d_]) {
            const int64_t s0 = c->slot_ptr[d_], s1 = c->slot_ptr[d_ + 1];
            slot = s0;
            double earliest = avail[s0];
            for (int64_t q = s0 + 1; q < s1; q++) {
                if (avail[q] < earliest) { earliest = avail[q]; slot = q; }
            }
            if (earliest > ready) st = earliest;
        }
        double fin = st + c->exec_t[row + d_];
        if (drain > fin) fin = drain;
        start[i] = st;
        finish[i] = fin;
        if (slot >= 0) avail[slot] = fin;
        const double end = fin + c->final_t[row + d_];
        if (end > makespan) makespan = end;
    }
    return makespan;
}

double repro_eval_move(const ReproCtx *c, const ReproDelta *d,
                       const int64_t *sub, int64_t sub_len, int64_t device,
                       int64_t k, double bound)
{
    int64_t *mp = d->mapping;
    int64_t *old = d->old_ws;
    for (int64_t s = 0; s < sub_len; s++) {
        old[s] = mp[sub[s]];
        mp[sub[s]] = device;
    }
    const double *snap = d->snap_avail + k * c->n_slots;
    for (int64_t s = 0; s < c->n_slots; s++) d->avail_ws[s] = snap[s];
    const double ms = span_core(c, mp, d->order, d->pos, k,
                                d->base_start, d->base_finish, d->ts, d->tf,
                                d->avail_ws, d->pre_ms[k], 1, bound);
    for (int64_t s = 0; s < sub_len; s++) mp[sub[s]] = old[s];
    return ms;
}
"""

_P = ctypes.POINTER
_f64 = _P(ctypes.c_double)
_i64 = _P(ctypes.c_int64)
_u8 = _P(ctypes.c_uint8)


class ReproCtx(ctypes.Structure):
    _fields_ = [
        ("n", ctypes.c_int64),
        ("m", ctypes.c_int64),
        ("n_slots", ctypes.c_int64),
        ("exec_t", _f64),
        ("fill_t", _f64),
        ("initial_t", _f64),
        ("final_t", _f64),
        ("pred_ptr", _i64),
        ("pred_src", _i64),
        ("pred_trans", _f64),
        ("streaming", _u8),
        ("serializes", _u8),
        ("slot_ptr", _i64),
    ]


class ReproDelta(ctypes.Structure):
    _fields_ = [
        ("mapping", _i64),
        ("order", _i64),
        ("pos", _i64),
        ("base_start", _f64),
        ("base_finish", _f64),
        ("ts", _f64),
        ("tf", _f64),
        ("snap_avail", _f64),
        ("pre_ms", _f64),
        ("avail_ws", _f64),
        ("old_ws", _i64),
    ]


def _ptr(arr, typ):
    """Raw data pointer of a C-contiguous numpy array as a ctypes pointer."""
    return ctypes.cast(arr.ctypes.data, typ)


class CKernel:
    """Loaded C kernel: typed entry points over the shared library."""

    def __init__(self, lib: ctypes.CDLL) -> None:
        self.lib = lib
        # array arguments are declared void* so callers can pass the raw
        # integer from ndarray.ctypes.data without a per-call cast
        vp = ctypes.c_void_p
        lib.repro_span.restype = ctypes.c_double
        lib.repro_span.argtypes = [vp, vp, vp, vp, vp, vp, ctypes.c_int]
        lib.repro_rebuild.restype = ctypes.c_double
        lib.repro_rebuild.argtypes = [vp, vp, vp, vp, vp, vp, vp]
        lib.repro_eval_move.restype = ctypes.c_double
        lib.repro_eval_move.argtypes = [
            vp,
            vp,
            vp,
            ctypes.c_int64,
            ctypes.c_int64,
            ctypes.c_int64,
            ctypes.c_double,
        ]

    # ------------------------------------------------------------------
    def make_delta(
        self,
        mapping,
        order,
        pos,
        base_start,
        base_finish,
        ts,
        tf,
        snap_avail,
        pre_ms,
        avail_ws,
        old_ws,
    ) -> ReproDelta:
        """Build a ``ReproDelta`` over preallocated numpy buffers.

        The buffers must stay alive and must never be reallocated (refill
        in place) — the struct holds raw pointers into them.
        """
        return ReproDelta(
            mapping=_ptr(mapping, _i64),
            order=_ptr(order, _i64),
            pos=_ptr(pos, _i64),
            base_start=_ptr(base_start, _f64),
            base_finish=_ptr(base_finish, _f64),
            ts=_ptr(ts, _f64),
            tf=_ptr(tf, _f64),
            snap_avail=_ptr(snap_avail, _f64),
            pre_ms=_ptr(pre_ms, _f64),
            avail_ws=_ptr(avail_ws, _f64),
            old_ws=_ptr(old_ws, _i64),
        )

    # ------------------------------------------------------------------
    def make_ctx(self, flat) -> ReproCtx:
        """Build a ``ReproCtx`` over a FlatModel's arrays.

        The caller must keep ``flat`` (and the returned struct) alive as
        long as the context is used — the struct holds raw pointers into
        the FlatModel's numpy buffers.
        """
        return ReproCtx(
            n=flat.n,
            m=flat.m,
            n_slots=flat.n_slots,
            exec_t=_ptr(flat.exec, _f64),
            fill_t=_ptr(flat.fill, _f64),
            initial_t=_ptr(flat.initial, _f64),
            final_t=_ptr(flat.final, _f64),
            pred_ptr=_ptr(flat.pred_ptr, _i64),
            pred_src=_ptr(flat.pred_src, _i64),
            pred_trans=_ptr(flat.pred_trans, _f64),
            streaming=_ptr(flat.streaming_u8, _u8),
            serializes=_ptr(flat.serializes_u8, _u8),
            slot_ptr=_ptr(flat.slot_ptr, _i64),
        )


def _cache_dir() -> str:
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(base, "repro-kernel")


def _compile(src_hash: str) -> Optional[str]:
    """Compile the kernel into the cache dir; return the .so path or None."""
    for cc in ("cc", "gcc", "clang"):
        try:
            cache = _cache_dir()
            os.makedirs(cache, exist_ok=True)
            so_path = os.path.join(cache, f"ckernel-{src_hash}.so")
            if os.path.exists(so_path):
                return so_path
            with tempfile.TemporaryDirectory() as tmp:
                c_path = os.path.join(tmp, "kernel.c")
                with open(c_path, "w") as fh:
                    fh.write(_C_SOURCE)
                tmp_so = os.path.join(tmp, "kernel.so")
                subprocess.run(
                    [
                        cc,
                        "-O2",
                        "-fPIC",
                        "-shared",
                        # bit-exactness vs CPython floats: no contraction,
                        # no fast-math (never passed), strict IEEE doubles
                        "-ffp-contract=off",
                        "-o",
                        tmp_so,
                        c_path,
                    ],
                    check=True,
                    capture_output=True,
                    timeout=120,
                )
                os.replace(tmp_so, so_path)  # atomic under concurrency
            return so_path
        except Exception:  # noqa: BLE001 - any failure => next cc / fallback
            continue
    return None


_LOADED: Optional[CKernel] = None
_TRIED = False


def load_ckernel() -> Optional[CKernel]:
    """The process-wide kernel, compiled/loaded on first use (or None)."""
    global _LOADED, _TRIED
    if _TRIED:
        return _LOADED
    _TRIED = True
    if os.environ.get("REPRO_PURE_PYTHON"):
        return None
    src_hash = hashlib.sha256(
        (_C_SOURCE + sys.version.split()[0]).encode()
    ).hexdigest()[:16]
    so_path = _compile(src_hash)
    if so_path is None:
        return None
    try:
        _LOADED = CKernel(ctypes.CDLL(so_path))
    except Exception:  # noqa: BLE001
        _LOADED = None
    return _LOADED
