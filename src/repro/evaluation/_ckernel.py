"""Optional compiled C version of the flat-array cost kernel.

The list-scheduling recurrence is inherently sequential, so the pure
Python kernel (:mod:`repro.evaluation.kernel`) is bound by interpreter
dispatch (~1-2 us per schedule position).  This module compiles the very
same loop — statement for statement — to native code with the system C
compiler and loads it via :mod:`ctypes`:

- no third-party dependency: only ``cc``/``gcc``/``clang`` if present;
- compiled once per source version into a per-user cache directory
  (atomic rename, safe under concurrent workers);
- strict IEEE semantics: ``-ffp-contract=off`` and no fast-math, so
  every double operation matches CPython float arithmetic bit for bit
  (pinned against ``CostModel._simulate_reference`` by
  ``tests/test_kernel_delta.py``);
- anything failing (no compiler, sandboxed filesystem, load error)
  degrades silently to the pure Python kernel — the C path is an
  optimization, never a requirement.

Set ``REPRO_PURE_PYTHON=1`` to force the Python kernel (used by the
test-suite to cover both paths).

Exposed entry points (see the C source below for contracts):

- ``repro_span``       — full scratch simulation into caller buffers;
- ``repro_span_batch`` — lane loop over a whole ``(B, n)`` population:
  one native call simulates every mapping back to back, so the Python
  call overhead (argument marshalling, pointer extraction — an order of
  magnitude more than the n=50 simulation itself) is paid once per
  *population* instead of once per genome;
- ``repro_span_batch_dedup`` — the lane loop plus in-kernel genome
  dedup (open-addressing table, duplicates verified by full row
  comparison) and per-lane feasibility skipping, so a converged
  population costs one simulation per *distinct* feasible genome and
  the Python side is a single call with no grouping work;
- ``repro_rebuild``    — scratch simulation recording per-position
  prefix snapshots (slot availability + running makespan) for the
  incremental evaluator;
- ``repro_rebuild_from`` — the same recording walk resumed from a
  position whose prefix snapshots are still valid, so committing an
  accepted move costs O(affected suffix) instead of O(V + E) (the
  tabu/annealing accept path);
- ``repro_eval_move``  — suffix-only re-simulation of one candidate
  move against the snapshotted base, with bound-abort.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import sys
import tempfile
from typing import Optional

__all__ = ["CKernel", "ReproCtx", "ReproDelta", "load_ckernel"]

_C_SOURCE = r"""
#include <math.h>
#include <stddef.h>
#include <stdint.h>

typedef struct {
    int64_t n, m, n_slots;
    const double *exec_t;     /* n*m   */
    const double *fill_t;     /* n*m   */
    const double *initial_t;  /* n*m   */
    const double *final_t;    /* n*m   */
    const int64_t *pred_ptr;  /* n+1   */
    const int64_t *pred_src;  /* E     */
    const double *pred_trans; /* E*m*m */
    const uint8_t *streaming; /* m     */
    const uint8_t *serializes;/* m     */
    const int64_t *slot_ptr;  /* m+1   */
} ReproCtx;

typedef struct {
    int64_t *mapping;          /* n, mutated and restored by eval_move */
    const int64_t *order;      /* n */
    const int64_t *pos;        /* n: task -> schedule position */
    const double *base_start;  /* n */
    const double *base_finish; /* n */
    double *ts;                /* n workspace (suffix values) */
    double *tf;                /* n workspace */
    const double *snap_avail;  /* n * n_slots prefix snapshots */
    const double *pre_ms;      /* n prefix-max ends */
    double *avail_ws;          /* n_slots workspace */
    int64_t *old_ws;           /* >= max subgraph size workspace */
} ReproDelta;

/* One loop body for every path; mirrors kernel.simulate_span statement
 * for statement (same op order => bit-identical doubles).  When pos is
 * NULL every predecessor reads ts/tf; otherwise positions before k read
 * the base arrays (incremental suffix mode, no restore needed). */
static double span_core(const ReproCtx *c, const int64_t *mapping,
                        const int64_t *order, const int64_t *pos, int64_t k,
                        const double *base_start, const double *base_finish,
                        double *ts, double *tf, double *avail,
                        double makespan, int contention, double bound)
{
    const int64_t n = c->n, m = c->m;
    const int use_base = (pos != NULL);
    for (int64_t j = k; j < n; j++) {
        const int64_t i = order[j];
        const int64_t d = mapping[i];
        const int64_t row = i * m;
        double ready = c->initial_t[row + d];
        double drain = 0.0;
        const int64_t e1 = c->pred_ptr[i + 1];
        for (int64_t e = c->pred_ptr[i]; e < e1; e++) {
            const int64_t p = c->pred_src[e];
            const int64_t dp = mapping[p];
            const int base_p = use_base && pos[p] < k;
            double r;
            if (dp == d && c->streaming[d]) {
                const double sp = base_p ? base_start[p] : ts[p];
                const double fp = base_p ? base_finish[p] : tf[p];
                r = sp + c->fill_t[p * m + dp];
                if (fp > drain) drain = fp;
            } else {
                const double fp = base_p ? base_finish[p] : tf[p];
                r = fp + c->pred_trans[e * m * m + dp * m + d];
            }
            if (r > ready) ready = r;
        }
        double st = ready;
        int64_t slot = -1;
        if (contention && c->serializes[d]) {
            const int64_t s0 = c->slot_ptr[d], s1 = c->slot_ptr[d + 1];
            slot = s0;
            double earliest = avail[s0];
            for (int64_t q = s0 + 1; q < s1; q++) {
                if (avail[q] < earliest) { earliest = avail[q]; slot = q; }
            }
            if (earliest > ready) st = earliest;
        }
        double fin = st + c->exec_t[row + d];
        if (drain > fin) fin = drain;
        ts[i] = st;
        tf[i] = fin;
        if (slot >= 0) avail[slot] = fin;
        const double end = fin + c->final_t[row + d];
        if (end > makespan) {
            makespan = end;
            if (makespan >= bound) return INFINITY;
        }
    }
    return makespan;
}

double repro_span(const ReproCtx *c, const int64_t *mapping,
                  const int64_t *order, double *start, double *finish,
                  double *avail, int contention)
{
    for (int64_t i = 0; i < c->n; i++) { start[i] = 0.0; finish[i] = 0.0; }
    for (int64_t s = 0; s < c->n_slots; s++) avail[s] = 0.0;
    return span_core(c, mapping, order, (const int64_t *)0, 0,
                     (const double *)0, (const double *)0,
                     start, finish, avail, 0.0, contention, INFINITY);
}

/* Scratch simulation of the delta base that additionally records, for
 * every position, the slot availability *before* it and the running
 * prefix makespan.  Duplicates span_core's body plus the two recording
 * statements (kept adjacent so the exactness contract stays auditable). */
double repro_rebuild(const ReproCtx *c, const ReproDelta *d,
                     double *start, double *finish,
                     double *snap_avail, double *pre_ms, double *avail)
{
    const int64_t n = c->n, m = c->m, n_slots = c->n_slots;
    const int64_t *mapping = d->mapping;
    const int64_t *order = d->order;
    for (int64_t i = 0; i < n; i++) { start[i] = 0.0; finish[i] = 0.0; }
    for (int64_t s = 0; s < n_slots; s++) avail[s] = 0.0;
    double makespan = 0.0;
    for (int64_t j = 0; j < n; j++) {
        for (int64_t s = 0; s < n_slots; s++)
            snap_avail[j * n_slots + s] = avail[s];
        pre_ms[j] = makespan;
        const int64_t i = order[j];
        const int64_t d_ = mapping[i];
        const int64_t row = i * m;
        double ready = c->initial_t[row + d_];
        double drain = 0.0;
        const int64_t e1 = c->pred_ptr[i + 1];
        for (int64_t e = c->pred_ptr[i]; e < e1; e++) {
            const int64_t p = c->pred_src[e];
            const int64_t dp = mapping[p];
            double r;
            if (dp == d_ && c->streaming[d_]) {
                r = start[p] + c->fill_t[p * m + dp];
                if (finish[p] > drain) drain = finish[p];
            } else {
                r = finish[p] + c->pred_trans[e * m * m + dp * m + d_];
            }
            if (r > ready) ready = r;
        }
        double st = ready;
        int64_t slot = -1;
        if (c->serializes[d_]) {
            const int64_t s0 = c->slot_ptr[d_], s1 = c->slot_ptr[d_ + 1];
            slot = s0;
            double earliest = avail[s0];
            for (int64_t q = s0 + 1; q < s1; q++) {
                if (avail[q] < earliest) { earliest = avail[q]; slot = q; }
            }
            if (earliest > ready) st = earliest;
        }
        double fin = st + c->exec_t[row + d_];
        if (drain > fin) fin = drain;
        start[i] = st;
        finish[i] = fin;
        if (slot >= 0) avail[slot] = fin;
        const double end = fin + c->final_t[row + d_];
        if (end > makespan) makespan = end;
    }
    return makespan;
}

/* Suffix-only commit: resume the recording rebuild from position k —
 * the prefix snapshots, start/finish and pre_ms entries before k are
 * already valid for the (just mutated) base mapping, because a move
 * whose first affected position is k cannot change state before k.
 * Identical loop body to repro_rebuild, so the suffix values are
 * bit-identical to a full rebuild's. */
double repro_rebuild_from(const ReproCtx *c, const ReproDelta *d, int64_t k,
                          double *start, double *finish,
                          double *snap_avail, double *pre_ms, double *avail)
{
    const int64_t n = c->n, m = c->m, n_slots = c->n_slots;
    const int64_t *mapping = d->mapping;
    const int64_t *order = d->order;
    for (int64_t s = 0; s < n_slots; s++)
        avail[s] = snap_avail[k * n_slots + s];
    double makespan = pre_ms[k];
    for (int64_t j = k; j < n; j++) {
        for (int64_t s = 0; s < n_slots; s++)
            snap_avail[j * n_slots + s] = avail[s];
        pre_ms[j] = makespan;
        const int64_t i = order[j];
        const int64_t d_ = mapping[i];
        const int64_t row = i * m;
        double ready = c->initial_t[row + d_];
        double drain = 0.0;
        const int64_t e1 = c->pred_ptr[i + 1];
        for (int64_t e = c->pred_ptr[i]; e < e1; e++) {
            const int64_t p = c->pred_src[e];
            const int64_t dp = mapping[p];
            double r;
            if (dp == d_ && c->streaming[d_]) {
                r = start[p] + c->fill_t[p * m + dp];
                if (finish[p] > drain) drain = finish[p];
            } else {
                r = finish[p] + c->pred_trans[e * m * m + dp * m + d_];
            }
            if (r > ready) ready = r;
        }
        double st = ready;
        int64_t slot = -1;
        if (c->serializes[d_]) {
            const int64_t s0 = c->slot_ptr[d_], s1 = c->slot_ptr[d_ + 1];
            slot = s0;
            double earliest = avail[s0];
            for (int64_t q = s0 + 1; q < s1; q++) {
                if (avail[q] < earliest) { earliest = avail[q]; slot = q; }
            }
            if (earliest > ready) st = earliest;
        }
        double fin = st + c->exec_t[row + d_];
        if (drain > fin) fin = drain;
        start[i] = st;
        finish[i] = fin;
        if (slot >= 0) avail[slot] = fin;
        const double end = fin + c->final_t[row + d_];
        if (end > makespan) makespan = end;
    }
    return makespan;
}

/* Multi-lane entry: simulate B independent mappings (rows of a dense
 * (B, n) int64 array) under one shared order.  Lanes reuse the same
 * start/finish/avail workspaces (repro_span zeroes them per lane), so
 * each lane is exactly one repro_span call — results are bit-identical
 * to B scalar simulations, the loop only amortizes call overhead. */
void repro_span_batch(const ReproCtx *c, const int64_t *mappings,
                      const int64_t *order, int64_t n_lanes, double *out,
                      double *start, double *finish, double *avail,
                      int contention)
{
    for (int64_t b = 0; b < n_lanes; b++) {
        out[b] = repro_span(c, mappings + b * c->n, order,
                            start, finish, avail, contention);
    }
}

/* Batch entry with in-kernel genome dedup: lanes whose row equals an
 * earlier feasible lane's row copy that lane's makespan instead of
 * re-simulating (exact-value sharing — duplicates are verified by full
 * row comparison after a 64-bit FNV-1a probe, so a hash collision costs
 * a probe step, never a wrong value).  `feas` (optional, may be NULL)
 * marks lanes that already failed the caller's area check: they get
 * INFINITY and do not enter the table.  `table` is caller-provided
 * open-addressing workspace of `table_size` (power of two, >= 2*B)
 * int64 slots.  Returns the number of lanes actually simulated. */
int64_t repro_span_batch_dedup(const ReproCtx *c, const int64_t *mappings,
                               const int64_t *order, int64_t n_lanes,
                               const uint8_t *feas, double *out,
                               int64_t *table, int64_t table_size,
                               double *start, double *finish, double *avail,
                               int contention)
{
    const int64_t n = c->n;
    const uint64_t mask = (uint64_t)table_size - 1;
    for (int64_t t = 0; t < table_size; t++) table[t] = 0;
    int64_t simulated = 0;
    for (int64_t b = 0; b < n_lanes; b++) {
        if (feas && !feas[b]) { out[b] = INFINITY; continue; }
        const int64_t *row = mappings + b * n;
        uint64_t h = 1469598103934665603ULL;
        for (int64_t i = 0; i < n; i++)
            h = (h ^ (uint64_t)row[i]) * 1099511628211ULL;
        uint64_t idx = h & mask;
        int64_t dup = -1;
        for (;;) {
            const int64_t entry = table[idx];
            if (entry == 0) { table[idx] = b + 1; break; }
            const int64_t *row0 = mappings + (entry - 1) * n;
            int same = 1;
            for (int64_t i = 0; i < n; i++)
                if (row0[i] != row[i]) { same = 0; break; }
            if (same) { dup = entry - 1; break; }
            idx = (idx + 1) & mask;
        }
        if (dup >= 0) { out[b] = out[dup]; continue; }
        out[b] = repro_span(c, row, order, start, finish, avail, contention);
        simulated++;
    }
    return simulated;
}

double repro_eval_move(const ReproCtx *c, const ReproDelta *d,
                       const int64_t *sub, int64_t sub_len, int64_t device,
                       int64_t k, double bound)
{
    int64_t *mp = d->mapping;
    int64_t *old = d->old_ws;
    for (int64_t s = 0; s < sub_len; s++) {
        old[s] = mp[sub[s]];
        mp[sub[s]] = device;
    }
    const double *snap = d->snap_avail + k * c->n_slots;
    for (int64_t s = 0; s < c->n_slots; s++) d->avail_ws[s] = snap[s];
    const double ms = span_core(c, mp, d->order, d->pos, k,
                                d->base_start, d->base_finish, d->ts, d->tf,
                                d->avail_ws, d->pre_ms[k], 1, bound);
    for (int64_t s = 0; s < sub_len; s++) mp[sub[s]] = old[s];
    return ms;
}
"""

_P = ctypes.POINTER
_f64 = _P(ctypes.c_double)
_i64 = _P(ctypes.c_int64)
_u8 = _P(ctypes.c_uint8)


class ReproCtx(ctypes.Structure):
    _fields_ = [
        ("n", ctypes.c_int64),
        ("m", ctypes.c_int64),
        ("n_slots", ctypes.c_int64),
        ("exec_t", _f64),
        ("fill_t", _f64),
        ("initial_t", _f64),
        ("final_t", _f64),
        ("pred_ptr", _i64),
        ("pred_src", _i64),
        ("pred_trans", _f64),
        ("streaming", _u8),
        ("serializes", _u8),
        ("slot_ptr", _i64),
    ]


class ReproDelta(ctypes.Structure):
    _fields_ = [
        ("mapping", _i64),
        ("order", _i64),
        ("pos", _i64),
        ("base_start", _f64),
        ("base_finish", _f64),
        ("ts", _f64),
        ("tf", _f64),
        ("snap_avail", _f64),
        ("pre_ms", _f64),
        ("avail_ws", _f64),
        ("old_ws", _i64),
    ]


def _ptr(arr, typ):
    """Raw data pointer of a C-contiguous numpy array as a ctypes pointer."""
    return ctypes.cast(arr.ctypes.data, typ)


class CKernel:
    """Loaded C kernel: typed entry points over the shared library."""

    def __init__(self, lib: ctypes.CDLL) -> None:
        self.lib = lib
        # array arguments are declared void* so callers can pass the raw
        # integer from ndarray.ctypes.data without a per-call cast
        vp = ctypes.c_void_p
        lib.repro_span.restype = ctypes.c_double
        lib.repro_span.argtypes = [vp, vp, vp, vp, vp, vp, ctypes.c_int]
        lib.repro_span_batch.restype = None
        lib.repro_span_batch.argtypes = [
            vp,
            vp,
            vp,
            ctypes.c_int64,
            vp,
            vp,
            vp,
            vp,
            ctypes.c_int,
        ]
        lib.repro_span_batch_dedup.restype = ctypes.c_int64
        lib.repro_span_batch_dedup.argtypes = [
            vp,
            vp,
            vp,
            ctypes.c_int64,
            vp,
            vp,
            vp,
            ctypes.c_int64,
            vp,
            vp,
            vp,
            ctypes.c_int,
        ]
        lib.repro_rebuild.restype = ctypes.c_double
        lib.repro_rebuild.argtypes = [vp, vp, vp, vp, vp, vp, vp]
        lib.repro_rebuild_from.restype = ctypes.c_double
        lib.repro_rebuild_from.argtypes = [
            vp,
            vp,
            ctypes.c_int64,
            vp,
            vp,
            vp,
            vp,
            vp,
        ]
        lib.repro_eval_move.restype = ctypes.c_double
        lib.repro_eval_move.argtypes = [
            vp,
            vp,
            vp,
            ctypes.c_int64,
            ctypes.c_int64,
            ctypes.c_int64,
            ctypes.c_double,
        ]

    # ------------------------------------------------------------------
    def make_delta(
        self,
        mapping,
        order,
        pos,
        base_start,
        base_finish,
        ts,
        tf,
        snap_avail,
        pre_ms,
        avail_ws,
        old_ws,
    ) -> ReproDelta:
        """Build a ``ReproDelta`` over preallocated numpy buffers.

        The buffers must stay alive and must never be reallocated (refill
        in place) — the struct holds raw pointers into them.
        """
        return ReproDelta(
            mapping=_ptr(mapping, _i64),
            order=_ptr(order, _i64),
            pos=_ptr(pos, _i64),
            base_start=_ptr(base_start, _f64),
            base_finish=_ptr(base_finish, _f64),
            ts=_ptr(ts, _f64),
            tf=_ptr(tf, _f64),
            snap_avail=_ptr(snap_avail, _f64),
            pre_ms=_ptr(pre_ms, _f64),
            avail_ws=_ptr(avail_ws, _f64),
            old_ws=_ptr(old_ws, _i64),
        )

    # ------------------------------------------------------------------
    def make_ctx(self, flat) -> ReproCtx:
        """Build a ``ReproCtx`` over a FlatModel's arrays.

        The caller must keep ``flat`` (and the returned struct) alive as
        long as the context is used — the struct holds raw pointers into
        the FlatModel's numpy buffers.
        """
        return ReproCtx(
            n=flat.n,
            m=flat.m,
            n_slots=flat.n_slots,
            exec_t=_ptr(flat.exec, _f64),
            fill_t=_ptr(flat.fill, _f64),
            initial_t=_ptr(flat.initial, _f64),
            final_t=_ptr(flat.final, _f64),
            pred_ptr=_ptr(flat.pred_ptr, _i64),
            pred_src=_ptr(flat.pred_src, _i64),
            pred_trans=_ptr(flat.pred_trans, _f64),
            streaming=_ptr(flat.streaming_u8, _u8),
            serializes=_ptr(flat.serializes_u8, _u8),
            slot_ptr=_ptr(flat.slot_ptr, _i64),
        )


#: base compile flags (part of the .so cache key, so changing them
#: recompiles).  -O3/-funroll-loops only reorder integer/branch work;
#: float semantics stay strict IEEE (-ffp-contract=off, fast-math never
#: passed), so the optimized build remains bit-identical to the Python
#: kernel.
_CFLAGS = ["-O3", "-funroll-loops", "-fPIC", "-shared", "-ffp-contract=off"]

#: ``REPRO_CKERNEL_SANITIZE`` tokens -> -fsanitize= groups.  asan/ubsan
#: are the spellings the CI jobs use; the long names work too.
_SANITIZERS = {
    "asan": "address",
    "address": "address",
    "ubsan": "undefined",
    "undefined": "undefined",
}


def sanitize_flags() -> list:
    """Extra compile flags from ``REPRO_CKERNEL_SANITIZE``.

    ``REPRO_CKERNEL_SANITIZE=asan,ubsan`` builds the kernel with
    ``-fsanitize=address,undefined -fno-omit-frame-pointer``.  The flags
    are folded into the ``.so`` cache key (exactly like the PR 4 flag
    change), so plain and sanitized builds coexist in the cache and
    flipping the variable between runs never serves a stale build.
    Sanitizers instrument memory/UB checks only — float semantics are
    untouched, so a sanitized kernel stays bit-identical to the
    reference walk (pinned by the ``kernel-sanitize`` CI job running
    the full equivalence suite under this variable).

    Unknown tokens raise :class:`ValueError`: a typo'd sanitizer must
    not silently run an unsanitized (or worse, pure-Python) kernel.
    """
    spec = os.environ.get("REPRO_CKERNEL_SANITIZE", "")
    groups = []
    for token in spec.split(","):
        token = token.strip().lower()
        if not token:
            continue
        group = _SANITIZERS.get(token)
        if group is None:
            raise ValueError(
                f"REPRO_CKERNEL_SANITIZE: unknown sanitizer {token!r} "
                f"(known: {', '.join(sorted(set(_SANITIZERS)))})"
            )
        if group not in groups:
            groups.append(group)
    if not groups:
        return []
    return ["-fsanitize=" + ",".join(groups), "-fno-omit-frame-pointer"]


def _cache_dir() -> str:
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(base, "repro-kernel")


#: appended to the C source for ``-fsanitize=address`` builds.  ASan
#: reads its options from /proc/self/environ at init, so an in-process
#: ``os.environ`` change cannot reach it; exporting the defaults from
#: the instrumented .so itself can.  ``verify_asan_link_order=0``
#: accepts dlopen() into an uninstrumented CPython (kernel code stays
#: fully instrumented); ``detect_leaks=0`` silences LeakSanitizer noise
#: from the host interpreter's own allocations.  A real ``ASAN_OPTIONS``
#: in the launch environment still overrides these defaults.
_ASAN_DEFAULTS = """
const char *__asan_default_options(void) {
    return "verify_asan_link_order=0:detect_leaks=0";
}
"""


def _effective_source(cflags) -> str:
    if any(f.startswith("-fsanitize=") and "address" in f for f in cflags):
        return _C_SOURCE + _ASAN_DEFAULTS
    return _C_SOURCE


def _source_hash(cflags) -> str:
    """Cache key: effective source text + flags + python version."""
    return hashlib.sha256(
        (_effective_source(cflags) + " ".join(cflags)
         + sys.version.split()[0]).encode()
    ).hexdigest()[:16]


def _compile(cflags) -> Optional[str]:
    """Compile the kernel with ``cflags``; return the .so path or None."""
    so_name = f"ckernel-{_source_hash(cflags)}.so"
    for cc in ("cc", "gcc", "clang"):
        try:
            cache = _cache_dir()
            os.makedirs(cache, exist_ok=True)
            so_path = os.path.join(cache, so_name)
            if os.path.exists(so_path):
                return so_path
            with tempfile.TemporaryDirectory() as tmp:
                c_path = os.path.join(tmp, "kernel.c")
                with open(c_path, "w") as fh:
                    fh.write(_effective_source(cflags))
                # stage the .so in the cache dir itself: os.replace is
                # atomic only within one filesystem, and the system
                # tmpdir is often a different mount — a cross-device
                # move can fail or copy non-atomically, letting a
                # concurrent process dlopen a half-written file
                stage = f"{so_path}.tmp.{os.getpid()}"
                try:
                    subprocess.run(
                        [cc, *cflags, "-o", stage, c_path],
                        check=True,
                        capture_output=True,
                        timeout=120,
                    )
                    os.replace(stage, so_path)  # atomic under concurrency
                finally:
                    if os.path.exists(stage):
                        os.unlink(stage)
            return so_path
        # any failure => try the next compiler, else the silent
        # pure-Python fallback: the C path is an optimization, never a
        # requirement
        except Exception:  # noqa: BLE001  # repro-lint: disable=EXC001
            continue
    return None


_LOADED: Optional[CKernel] = None
_TRIED = False
_SO_PATH: Optional[str] = None
_SANITIZE: list = []


def load_ckernel() -> Optional[CKernel]:
    """The process-wide kernel, compiled/loaded on first use (or None).

    The first call in a process decides the build (including
    ``REPRO_PURE_PYTHON`` and ``REPRO_CKERNEL_SANITIZE``); later changes
    to either variable require a new process, same as before.
    """
    global _LOADED, _TRIED, _SO_PATH, _SANITIZE
    if _TRIED:
        return _LOADED
    _TRIED = True
    if os.environ.get("REPRO_PURE_PYTHON"):
        return None
    extra = sanitize_flags()  # raises on a typo'd sanitizer — see above
    so_path = _compile(_CFLAGS + extra)
    if so_path is None:
        return None
    try:
        _LOADED = CKernel(ctypes.CDLL(so_path))
        _SO_PATH = so_path
        _SANITIZE = extra
    except Exception:  # noqa: BLE001
        _LOADED = None
    return _LOADED


def kernel_status() -> dict:
    """Which span kernel this process runs, and why — the ``repro env``
    / benchmark-stamp view of :func:`load_ckernel`.

    Triggers a compile attempt on first call (same as any evaluation
    would), so ``available`` reflects what a real run will actually use.
    """
    kern = load_ckernel()
    return {
        "kernel": "c" if kern is not None else "python",
        "available": kern is not None,
        "pure_python_forced": bool(os.environ.get("REPRO_PURE_PYTHON")),
        "so_path": _SO_PATH,
        "cache_dir": _cache_dir(),
        "cflags": " ".join(_CFLAGS + _SANITIZE),
        "sanitize": os.environ.get("REPRO_CKERNEL_SANITIZE", "") or None,
    }


# ---------------------------------------------------------------------------
# consistency between the embedded C source and its Python mirrors
# ---------------------------------------------------------------------------

def source_consistency_problems() -> list:
    """Mismatches between ``_C_SOURCE`` and the Python-side mirrors.

    Returns ``[(line, message), ...]`` — empty when consistent — where
    ``line`` points into *this* file at the offending C statement.  The
    checked invariants (lint rule KER001):

    - the in-kernel dedup's FNV-1a offset basis and prime equal
      ``repro.evaluation.kernel.DEDUP_FNV_OFFSET`` / ``DEDUP_FNV_PRIME``
      (``CostModel.simulate_many`` sizes and trusts the same table);
    - the documented table-sizing contract (``>= FACTOR*B`` slots)
      matches ``DEDUP_TABLE_FACTOR``;
    - infeasible lanes are marked with C ``INFINITY``, which is the same
      sentinel as ``costmodel.INFEASIBLE`` / ``kernel.INF``.
    """
    import re

    from .costmodel import INFEASIBLE
    from .kernel import (
        DEDUP_FNV_OFFSET,
        DEDUP_FNV_PRIME,
        DEDUP_TABLE_FACTOR,
        INF,
    )

    problems = []

    def c_line(pattern: str) -> int:
        """1-based line of the first match of ``pattern`` in this file."""
        with open(__file__, encoding="utf-8") as fh:
            for lineno, text in enumerate(fh, start=1):
                if re.search(pattern, text):
                    return lineno
        return 1

    def check(pattern: str, expected: int, what: str) -> None:
        m = re.search(pattern, _C_SOURCE)
        if m is None:
            problems.append((
                c_line(r"_C_SOURCE = r"),
                f"C source: cannot locate the {what} "
                f"(pattern {pattern!r}); update the mirror check",
            ))
        elif int(m.group(1)) != expected:
            problems.append((
                c_line(pattern),
                f"C {what} is {m.group(1)}, Python mirror "
                f"(repro.evaluation.kernel) says {expected}",
            ))

    check(r"uint64_t h = (\d+)ULL", DEDUP_FNV_OFFSET, "FNV-1a offset basis")
    check(r"\* (\d+)ULL", DEDUP_FNV_PRIME, "FNV-1a prime")
    check(
        r">=\s*(\d+)\*B", DEDUP_TABLE_FACTOR,
        "dedup table-sizing factor (slots per lane)",
    )
    if "out[b] = INFINITY" not in _C_SOURCE:
        problems.append((
            c_line(r"_C_SOURCE = r"),
            "C source no longer marks infeasible lanes with INFINITY",
        ))
    if not (INFEASIBLE == INF == float("inf")):
        problems.append((
            1,
            "INFEASIBLE / kernel.INF are no longer the +inf sentinel "
            "the C kernel emits",
        ))
    return problems
