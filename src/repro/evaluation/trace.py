"""Schedule traces and ASCII Gantt charts.

:func:`simulate_trace` runs the same recurrence as
:meth:`repro.evaluation.costmodel.CostModel.simulate` but records *why* each
task starts when it does — device, slot, ready time, whether it streamed
from a predecessor, and the transfer costs paid.  :func:`render_gantt` turns
a trace into a terminal Gantt chart:

::

    epyc7351p.0 |██0███░░██3███████        |
    epyc7351p.1 |  ██1████                 |
    vega56      |      ██2██               |
    xcz7045     |  ≈≈≈≈4≈≈≈≈               |

The trace is the debugging/teaching view of the cost model; the hot path in
``costmodel`` stays record-free.  Consistency between the two is covered by
tests (the trace's makespan must equal ``simulate()``'s).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from .costmodel import INFEASIBLE, CostModel

__all__ = ["TaskTrace", "ScheduleTrace", "simulate_trace", "render_gantt"]


@dataclass(frozen=True)
class TaskTrace:
    """Execution record of one task."""

    task: int               # task id
    index: int              # task index
    device: int
    slot: int               # -1 on non-serializing devices
    ready: float            # data-ready time (after transfers/streams)
    start: float
    finish: float
    streamed: bool          # received at least one streamed input
    waited: float           # start - ready (device contention)


@dataclass
class ScheduleTrace:
    """Full simulation record."""

    tasks: List[TaskTrace]
    makespan: float
    device_busy: List[float]   # summed execution time per device

    def by_device(self, device: int) -> List[TaskTrace]:
        return [t for t in self.tasks if t.device == device]

    def total_wait(self) -> float:
        return sum(t.waited for t in self.tasks)


def simulate_trace(
    model: CostModel,
    mapping: Sequence[int],
    order: Optional[Sequence[int]] = None,
) -> ScheduleTrace:
    """Trace-recording twin of ``CostModel.simulate`` (same numbers)."""
    if not model.is_feasible(mapping):
        return ScheduleTrace(tasks=[], makespan=INFEASIBLE,
                             device_busy=[0.0] * model.m)
    if order is None:
        order = model.bfs_order
    mapping = list(mapping)

    n = model.n
    start = [0.0] * n
    finish = [0.0] * n
    avail = [[0.0] * s for s in model._slots]  # noqa: SLF001
    busy = [0.0] * model.m
    makespan = 0.0
    records: List[Optional[TaskTrace]] = [None] * n

    for i in order:
        d = mapping[i]
        ready = model._initial[i][d]  # noqa: SLF001
        drain = 0.0
        streamed = False
        for p, trans in model._pred[i]:  # noqa: SLF001
            dp = mapping[p]
            if dp == d and model._streaming_dev[d]:  # noqa: SLF001
                r = start[p] + model._fill[p][dp]  # noqa: SLF001
                streamed = True
                if finish[p] > drain:
                    drain = finish[p]
            else:
                r = finish[p] + trans[dp][d]
            if r > ready:
                ready = r
        st = ready
        slot = -1
        if model._serializes[d]:  # noqa: SLF001
            slots_d = avail[d]
            slot = min(range(len(slots_d)), key=slots_d.__getitem__)
            if slots_d[slot] > ready:
                st = slots_d[slot]
        exec_t = model._exec[i][d]  # noqa: SLF001
        fin = max(st + exec_t, drain)
        start[i] = st
        finish[i] = fin
        busy[d] += exec_t
        if slot >= 0:
            avail[d][slot] = fin
        records[i] = TaskTrace(
            task=model.tasks[i],
            index=i,
            device=d,
            slot=slot,
            ready=ready,
            start=st,
            finish=fin,
            streamed=streamed,
            waited=max(0.0, st - ready),
        )
        end = fin + model._final[i][d]  # noqa: SLF001
        if end > makespan:
            makespan = end

    ordered = [records[i] for i in order]
    return ScheduleTrace(tasks=ordered, makespan=makespan, device_busy=busy)


def render_gantt(
    trace: ScheduleTrace,
    model: CostModel,
    *,
    width: int = 72,
    stream_char: str = "≈",
    busy_char: str = "█",
) -> str:
    """Terminal Gantt chart; one row per device slot (FPGA gets stacked rows)."""
    if not trace.tasks or trace.makespan <= 0:
        return "(empty or infeasible schedule)"
    platform = model.platform
    scale = width / trace.makespan

    # rows: serializing devices -> one per slot; others -> one per task level
    rows = []  # (label, list of (start, finish, task, streamed))
    for d, dev in enumerate(platform.devices):
        entries = sorted(
            (t for t in trace.tasks if t.device == d), key=lambda t: t.start
        )
        if dev.serializes:
            for s in range(dev.slots):
                label = f"{dev.name}.{s}" if dev.slots > 1 else dev.name
                rows.append(
                    (label, [t for t in entries if t.slot == s])
                )
        else:
            # pack concurrent FPGA tasks into as few display rows as needed
            lanes: List[List[TaskTrace]] = []
            for t in entries:
                for lane in lanes:
                    if lane[-1].finish <= t.start + 1e-12:
                        lane.append(t)
                        break
                else:
                    lanes.append([t])
            if not lanes:
                lanes = [[]]
            for k, lane in enumerate(lanes):
                label = f"{dev.name}" if len(lanes) == 1 else f"{dev.name}~{k}"
                rows.append((label, lane))

    label_w = max(len(label) for label, _ in rows)
    lines = []
    for label, entries in rows:
        canvas = [" "] * width
        for t in entries:
            a = min(width - 1, int(t.start * scale))
            b = min(width, max(a + 1, int(t.finish * scale)))
            ch = stream_char if t.streamed else busy_char
            for x in range(a, b):
                canvas[x] = ch
            tag = str(t.task)
            mid = max(a, min((a + b) // 2 - len(tag) // 2, width - len(tag)))
            for j, c in enumerate(tag):
                canvas[mid + j] = c
        lines.append(f"{label:>{label_w}s} |{''.join(canvas)}|")
    lines.append(
        f"{'':>{label_w}s}  0{'':{width - 10}}{trace.makespan * 1e3:8.1f} ms"
    )
    return "\n".join(lines)
