"""Schedule suites (paper Sec. IV-A).

"For each graph, we determine the makespan of a mapping as the minimum among
all makespans that are computed using a breadth-first schedule and 100
randomly generated schedules."

A *schedule* here is a topological priority order fed to the list simulation
of :class:`repro.evaluation.costmodel.CostModel`.  The suite is generated
once per graph and reused for every mapping, so algorithm comparisons see
identical schedules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..graphs.taskgraph import TaskGraph

__all__ = ["bfs_schedule", "random_topological_schedule", "ScheduleSuite"]


def bfs_schedule(g: TaskGraph) -> List[int]:
    """Breadth-first schedule as task *indices* into ``g.tasks()``."""
    index = {t: i for i, t in enumerate(g.tasks())}
    return [index[t] for t in g.bfs_order()]


def random_topological_schedule(
    g: TaskGraph, rng: np.random.Generator
) -> List[int]:
    """A uniformly random-ish topological order (Kahn with random tie-break)."""
    index = {t: i for i, t in enumerate(g.tasks())}
    indeg = {t: g.in_degree(t) for t in g.tasks()}
    ready = [t for t in g.tasks() if indeg[t] == 0]
    order: List[int] = []
    while ready:
        pos = int(rng.integers(len(ready)))
        ready[pos], ready[-1] = ready[-1], ready[pos]
        t = ready.pop()
        order.append(index[t])
        for s in g.successors(t):
            indeg[s] -= 1
            if indeg[s] == 0:
                ready.append(s)
    return order


@dataclass
class ScheduleSuite:
    """A fixed set of schedules; reported makespan = min over the suite."""

    orders: List[List[int]]

    @classmethod
    def paper(
        cls,
        g: TaskGraph,
        rng: Optional[np.random.Generator] = None,
        *,
        n_random: int = 100,
    ) -> "ScheduleSuite":
        """BFS + ``n_random`` random schedules (paper default: 100)."""
        rng = rng if rng is not None else np.random.default_rng(0)
        orders = [bfs_schedule(g)]
        for _ in range(n_random):
            orders.append(random_topological_schedule(g, rng))
        return cls(orders)

    @classmethod
    def bfs_only(cls, g: TaskGraph) -> "ScheduleSuite":
        """Only the deterministic breadth-first schedule (fast path)."""
        return cls([bfs_schedule(g)])

    def __len__(self) -> int:
        return len(self.orders)
