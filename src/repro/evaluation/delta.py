"""Incremental (delta) makespan evaluation for greedy move search.

With the schedule order fixed (the construction BFS order), remapping a
candidate subgraph ``S`` can only change simulation state from the first
schedule position of ``S`` onward: every task scheduled earlier keeps its
start/finish, and the device slot-availability state at that position is
unchanged.  :class:`DeltaEvaluator` therefore keeps, for the current
*base* mapping, per-position prefix snapshots of

- ``start``/``finish`` of every task (shared arrays — positions before
  the suffix are simply read as-is),
- the flat slot-availability vector *before* each position,
- the running prefix-max task end (the makespan over the prefix),

and :meth:`evaluate_move` re-simulates **only the suffix** from the first
affected position, sharing the literal loop body of the scratch kernel
(:func:`repro.evaluation.kernel.simulate_span`).  The per-move cost drops
from O(V + E) to O(affected suffix) — and the returned makespan is
bit-identical to a scratch ``CostModel.simulate`` of the moved mapping
(pinned by ``tests/test_kernel_delta.py``): delta evaluation is an
optimization, never an approximation.

Feasibility is likewise incremental: per-device area sums are maintained
for the base mapping and a move only applies its own delta.  Because the
scratch check sums areas in a different floating-point order, a decision
falling within a tiny band of the tolerance threshold is re-derived from
an exact scratch sum, so the feasibility *decision* always matches
``CostModel.is_feasible`` exactly.

Committing an accepted move is suffix-sized too: :meth:`apply_move`
with the candidate's ``first_pos`` resumes the recording rebuild from
that position (``repro_rebuild_from`` / the mirrored Python walk) —
the prefix snapshots are still valid, so the tabu/annealing accept
path never pays a full O(V + E) rebuild.

Bookkeeping: every suffix re-simulation (and every suffix commit)
increments ``model.n_delta_evaluations`` and adds ``suffix_length / n``
to ``model.delta_work`` (full-evaluation equivalents); full base
rebuilds count toward ``model.n_simulations``.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from ..obs import metrics as _metrics
from ..sp.subgraphs import schedule_span
from .costmodel import AREA_TOL, INFEASIBLE, CostModel, area_guard_band
from .kernel import INF, simulate_batch, simulate_span

__all__ = ["Candidate", "DeltaEvaluator"]


class Candidate(NamedTuple):
    """A candidate subgraph prepared for fast repeated move evaluation."""

    members: List[int]     #: task indices
    arr: np.ndarray        #: the same indices as an int64 array (C kernel)
    ptr: int               #: cached raw data pointer of ``arr``
    first_pos: int         #: first schedule position the candidate touches
    area: float            #: summed task area (incremental feasibility)

# Near the area threshold, the incremental usage sum falls back to an
# exact scratch recount (see _move_feasible); the band for "near" is
# repro.evaluation.costmodel.area_guard_band, shared with
# CostModel.feasible_mask's vectorized check and the runtime area ledger.

#: Below this many lanes a vectorized batch loses to scalar suffix evals:
#: the batch kernel pays ~25 us of numpy call overhead per schedule
#: position regardless of width, vs ~2 us per position per lane for the
#: scalar loop — break-even sits around 90-100 lanes.
_BATCH_MIN = 96

#: Lanes per vectorized batch.  Chunks are cut from moves sorted by
#: first affected position, so each chunk starts at its first lane's
#: position — grouping moves that share a prefix keeps the simulated
#: span short while the batch stays wide enough to amortize numpy calls.
_BATCH_CHUNK = 256


class DeltaEvaluator:
    """Suffix-only move evaluation against a mutable base mapping.

    Usage::

        delta = DeltaEvaluator(model)
        current = delta.reset(mapping)          # full sim + snapshots
        sub, first, area = delta.candidate(np.array([3, 4]))
        ms = delta.evaluate_move(sub, device, first, area)
        current = delta.apply_move(sub, device)  # commit + rebuild

    ``evaluate_move`` accepts a ``bound``: the suffix simulation aborts
    (returning ``inf``) once the running makespan reaches it.  Since the
    makespan is a running max, the exact value could only be >= bound,
    so callers that only *compare* against the bound (the basic greedy
    scan) lose nothing — callers that need exact values (the gamma
    heuristic's expectations) simply pass no bound.
    """

    def __init__(self, model: CostModel, order: Optional[Sequence[int]] = None) -> None:
        self.model = model
        self.flat = model.flat
        self.n = model.n
        self.order: List[int] = [int(i) for i in (order if order is not None else model.bfs_order)]
        if len(self.order) != self.n:
            raise ValueError("order must schedule every task exactly once")
        pos = [0] * self.n
        for j, i in enumerate(self.order):
            pos[i] = j
        self.pos: List[int] = pos

        self._area: List[float] = model._area.tolist()
        self._area_devs: List[int] = sorted(model._area_limits)
        self._area_limits: List[float] = [
            model._area_limits[d] for d in self._area_devs
        ]

        # Suffix-length histogram, captured once here so the per-move
        # cost when observability is on stays one attribute test plus a
        # bucket increment — and exactly one attribute test when off.
        registry = _metrics.get_registry()
        self._suffix_hist = (
            registry.histogram("delta.suffix_len")
            if registry is not None else None
        )

        n = self.n
        self._map: List[int] = []
        self._usage: List[float] = []
        self._start: List[float] = [0.0] * n
        self._finish: List[float] = [0.0] * n
        self._tstart: List[float] = [0.0] * n
        self._tfinish: List[float] = [0.0] * n
        self._snap_avail: List[List[float]] = []
        self._pre_ms: List[float] = []
        self.base_makespan: float = INF

        # preallocated numpy state — refilled in place on every rebuild,
        # never reallocated (the C kernel keeps raw pointers into them)
        n_slots = self.flat.n_slots
        self._np_map = np.zeros(n, dtype=np.int64)
        self._order_np = np.asarray(self.order, dtype=np.int64)
        self._pos_np = np.asarray(pos, dtype=np.int64)
        self._start_np = np.zeros(n)
        self._finish_np = np.zeros(n)
        self._snap_np = np.zeros((n, n_slots))
        self._pre_ms_np = np.zeros(n)
        self._ck = model._ck
        if self._ck is not None:
            import ctypes

            self._ts_ws = np.empty(n)
            self._tf_ws = np.empty(n)
            self._avail_ws = np.empty(max(1, n_slots))
            self._old_ws = np.empty(n, dtype=np.int64)
            self._dctx = self._ck.make_delta(
                self._np_map,
                self._order_np,
                self._pos_np,
                self._start_np,
                self._finish_np,
                self._ts_ws,
                self._tf_ws,
                self._snap_np,
                self._pre_ms_np,
                self._avail_ws,
                self._old_ws,
            )
            self._dctx_p = ctypes.byref(self._dctx)
            self._ctx_p = model._ck_ctx_p
            self._eval_move_c = self._ck.lib.repro_eval_move

    # ------------------------------------------------------------------
    def candidate(self, sub: Sequence[int]) -> Candidate:
        """Prepare a candidate subgraph for repeated move evaluation.

        Done once per candidate and reused for every device and every
        round — the per-move work stays proportional to the suffix.  The
        cached data pointer is what the C kernel indexes with (computing
        it per move would cost more than the native suffix simulation).
        """
        if isinstance(sub, np.ndarray) and sub.dtype == np.int64:
            sub_np = np.ascontiguousarray(sub)
            sub_list = sub_np.tolist()
        else:
            sub_list = [int(t) for t in sub]
            sub_np = np.asarray(sub_list, dtype=np.int64)
        first, _last = schedule_span(sub_list, self.pos)
        area = self._area
        return Candidate(
            sub_list,
            sub_np,
            sub_np.ctypes.data,
            first,
            sum(area[t] for t in sub_list),
        )

    # ------------------------------------------------------------------
    def reset(self, mapping: Sequence[int]) -> float:
        """Set the base mapping (must be feasible) and rebuild snapshots."""
        np_map = np.asarray(mapping, dtype=np.int64)
        if not self.model.is_feasible(np_map):
            raise ValueError("delta evaluation needs a feasible base mapping")
        np.copyto(self._np_map, np_map)
        self._map = self._np_map.tolist()
        usage = self.model.area_usage(self._np_map)
        self._usage = [usage[d] for d in self._area_devs]
        return self._rebuild()

    def _rebuild(self) -> float:
        """Full base simulation recording per-position prefix snapshots.

        This is :func:`repro.evaluation.kernel.simulate_span` from
        position 0 with two recording statements added per position —
        the float operations must stay statement-for-statement identical
        to the kernel (exactness contract).  With the C kernel loaded the
        same recording simulation runs natively (``repro_rebuild``).
        """
        self.model.n_simulations += 1
        if self._ck is not None:
            self.base_makespan = self._ck.lib.repro_rebuild(
                self._ctx_p,
                self._dctx_p,
                self._start_np.ctypes.data,
                self._finish_np.ctypes.data,
                self._snap_np.ctypes.data,
                self._pre_ms_np.ctypes.data,
                self._avail_ws.ctypes.data,
            )
            return self.base_makespan
        flat = self.flat
        order = self.order
        mapping = self._map
        m = flat.m
        exec_l = flat.exec_l
        fill_l = flat.fill_l
        initial_l = flat.initial_l
        final_l = flat.final_l
        pred_l = flat.pred_l
        streaming = flat.streaming_l
        serializes = flat.serializes_l
        slot_ptr = flat.slot_ptr_l

        start = self._start
        finish = self._finish
        avail = flat.fresh_avail()
        snap_avail: List[List[float]] = []
        pre_ms: List[float] = []
        makespan = 0.0

        for j in range(self.n):
            snap_avail.append(avail.copy())
            pre_ms.append(makespan)
            i = order[j]
            d = mapping[i]
            row = i * m
            ready = initial_l[row + d]
            drain = 0.0
            for p, trans in pred_l[i]:
                dp = mapping[p]
                if dp == d and streaming[d]:
                    r = start[p] + fill_l[p * m + dp]
                    fp = finish[p]
                    if fp > drain:
                        drain = fp
                else:
                    r = finish[p] + trans[dp * m + d]
                if r > ready:
                    ready = r
            st = ready
            slot = -1
            if serializes[d]:
                s0 = slot_ptr[d]
                s1 = slot_ptr[d + 1]
                slot = s0
                earliest = avail[s0]
                for q in range(s0 + 1, s1):
                    v = avail[q]
                    if v < earliest:
                        earliest = v
                        slot = q
                if earliest > ready:
                    st = earliest
            fin = st + exec_l[row + d]
            if drain > fin:
                fin = drain
            start[i] = st
            finish[i] = fin
            if slot >= 0:
                avail[slot] = fin
            end = fin + final_l[row + d]
            if end > makespan:
                makespan = end

        self._snap_avail = snap_avail
        self._pre_ms = pre_ms
        self._tstart = start.copy()
        self._tfinish = finish.copy()
        # numpy mirrors for the vectorized batch evaluator (refilled in
        # place; see __init__)
        np.copyto(self._start_np, start)
        np.copyto(self._finish_np, finish)
        if self.flat.n_slots:
            np.copyto(self._snap_np, snap_avail)
        np.copyto(self._pre_ms_np, pre_ms)
        self.base_makespan = makespan
        return makespan

    # ------------------------------------------------------------------
    def _move_feasible(self, sub_list: List[int], device: int, sub_area: float) -> bool:
        """Incremental area check, exact-recount fallback near the threshold.

        Matches ``CostModel.is_feasible`` of the moved mapping exactly:
        the base is feasible, so only devices whose usage changes are
        re-checked (gaining devices can violate; losing devices are
        re-checked too in case of zero/degenerate areas).
        """
        mp = self._map
        area = self._area
        for ai, a in enumerate(self._area_devs):
            removed = 0.0
            for t in sub_list:
                if mp[t] == a:
                    removed += area[t]
            added = sub_area if device == a else 0.0
            if removed == 0.0 and added == 0.0:
                continue
            new_usage = self._usage[ai] - removed + added
            limit = self._area_limits[ai] + AREA_TOL
            if abs(new_usage - limit) <= area_guard_band(limit):
                new_usage = self._exact_usage(sub_list, device, a)
            if new_usage > limit:
                return False
        return True

    def _exact_usage(self, sub_list: List[int], device: int, a: int) -> float:
        """Scratch (same summation order as ``area_usage``) trial usage."""
        trial = self._np_map.copy()
        trial[sub_list] = device
        return float(self.model._area[trial == a].sum())

    # ------------------------------------------------------------------
    def evaluate_move(
        self, cand: Candidate, device: int, *, bound: float = INF
    ) -> float:
        """Makespan after remapping the candidate to ``device``.

        Bit-identical to ``model.simulate`` of the moved mapping (or
        :data:`INFEASIBLE`); ``inf`` when the running makespan reaches
        ``bound`` first.  The base mapping and snapshots are untouched.
        """
        sub_list = cand.members
        first_pos = cand.first_pos
        if not self._move_feasible(sub_list, device, cand.area):
            return INFEASIBLE
        model = self.model
        model.n_delta_evaluations += 1
        model.delta_work += (self.n - first_pos) / self.n
        if self._suffix_hist is not None:
            self._suffix_hist.observe_int(self.n - first_pos)

        if self._ck is not None:
            # the C side applies the move, simulates the suffix against
            # the snapshotted base and restores the mapping
            return self._eval_move_c(
                self._ctx_p,
                self._dctx_p,
                cand.ptr,
                len(sub_list),
                device,
                first_pos,
                bound,
            )

        mp = self._map
        old = [mp[t] for t in sub_list]
        for t in sub_list:
            mp[t] = device
        ts = self._tstart
        tf = self._tfinish
        order = self.order
        try:
            return simulate_span(
                self.flat,
                mp,
                order,
                first_pos,
                ts,
                tf,
                self._snap_avail[first_pos].copy(),
                self._pre_ms[first_pos],
                bound=bound,
            )
        finally:
            for t, o in zip(sub_list, old):
                mp[t] = o
            bs = self._start
            bf = self._finish
            for j in range(first_pos, self.n):
                i = order[j]
                ts[i] = bs[i]
                tf[i] = bf[i]

    # ------------------------------------------------------------------
    def evaluate_moves(
        self, items: Sequence[Tuple[Candidate, int]]
    ) -> np.ndarray:
        """Makespans of many ``(candidate, device)`` moves (aligned array).

        Values are bit-identical to :meth:`evaluate_move` per item (and
        hence to a scratch simulation).  With the C kernel loaded the
        items are simply evaluated one suffix at a time (native suffix
        evaluation is already cheaper than any batching overhead).  On
        the pure Python path, feasible lanes are sorted by first
        affected position and cut into chunks of at most
        ``_BATCH_CHUNK``: each chunk simulates as lockstep vector lanes
        from its *earliest* lane's position on the shared base prefix
        (:func:`repro.evaluation.kernel.simulate_batch` — lanes starting
        later merely recompute base-identical values for a few
        positions, which is exact); chunks too small to amortize numpy
        call overhead fall back to the scalar suffix kernel.
        """
        res = np.empty(len(items))
        if self._ck is not None:
            evaluate = self.evaluate_move
            for idx, (cand, dev) in enumerate(items):
                res[idx] = evaluate(cand, dev)
            return res
        feas: List[int] = []
        for idx, (cand, dev) in enumerate(items):
            if self._move_feasible(cand.members, dev, cand.area):
                feas.append(idx)
            else:
                res[idx] = INFEASIBLE
        feas.sort(key=lambda idx: items[idx][0].first_pos)
        n = self.n
        model = self.model
        at = 0
        while at < len(feas):
            chunk = feas[at : at + _BATCH_CHUNK]
            at += len(chunk)
            if len(chunk) < _BATCH_MIN:
                for idx in chunk:
                    cand, dev = items[idx]
                    res[idx] = self.evaluate_move(cand, dev)
                continue
            k = items[chunk[0]][0].first_pos
            B = len(chunk)
            map_blk = np.repeat(self._np_map[:, None], B, axis=1)
            for b, idx in enumerate(chunk):
                cand, dev = items[idx]
                map_blk[cand.members, b] = dev
            start_blk = np.repeat(self._start_np[:, None], B, axis=1)
            finish_blk = np.repeat(self._finish_np[:, None], B, axis=1)
            avail_blk = np.repeat(self._snap_np[k][:, None], B, axis=1)
            ms = np.full(B, self._pre_ms[k])
            simulate_batch(
                self.flat,
                map_blk,
                self.order,
                k,
                start_blk,
                finish_blk,
                avail_blk,
                ms,
            )
            res[chunk] = ms
            model.n_delta_evaluations += B
            model.delta_work += B * (n - k) / n
            if self._suffix_hist is not None:
                for idx in chunk:
                    self._suffix_hist.observe_int(
                        n - items[idx][0].first_pos
                    )
        return res

    # ------------------------------------------------------------------
    def apply_move(
        self,
        sub_list: List[int],
        device: int,
        *,
        first_pos: Optional[int] = None,
    ) -> float:
        """Commit a move to the base mapping and rebuild the snapshots.

        With ``first_pos`` (the candidate's first schedule position, from
        :meth:`candidate`) the rebuild resumes from that position — the
        prefix snapshots are still valid, so a commit costs O(affected
        suffix); suffix values are bit-identical to a full rebuild
        (``repro_rebuild_from`` / the mirrored Python walk).  Without it
        a full O(V + E) recording rebuild runs, as before.
        """
        for t in sub_list:
            self._map[t] = device
        self._np_map[sub_list] = device
        # exact scratch recount per area device (same summation order as
        # area_usage, without the dict round trip — apply_move runs once
        # per accepted SA/tabu move, so this is warm-path code)
        area = self.model._area  # noqa: SLF001
        np_map = self._np_map
        self._usage = [float(area[np_map == a].sum()) for a in self._area_devs]
        if first_pos is None or first_pos <= 0:
            return self._rebuild()
        return self._rebuild_from(first_pos)

    def _rebuild_from(self, k: int) -> float:
        """Recording rebuild resumed at position ``k`` (prefix untouched).

        Counts as an incremental evaluation (``n_delta_evaluations`` /
        fractional ``delta_work``), not a full simulation.
        """
        model = self.model
        model.n_delta_evaluations += 1
        model.delta_work += (self.n - k) / self.n
        if self._suffix_hist is not None:
            self._suffix_hist.observe_int(self.n - k)
        if self._ck is not None:
            self.base_makespan = self._ck.lib.repro_rebuild_from(
                self._ctx_p,
                self._dctx_p,
                k,
                self._start_np.ctypes.data,
                self._finish_np.ctypes.data,
                self._snap_np.ctypes.data,
                self._pre_ms_np.ctypes.data,
                self._avail_ws.ctypes.data,
            )
            return self.base_makespan
        flat = self.flat
        order = self.order
        mapping = self._map
        m = flat.m
        exec_l = flat.exec_l
        fill_l = flat.fill_l
        initial_l = flat.initial_l
        final_l = flat.final_l
        pred_l = flat.pred_l
        streaming = flat.streaming_l
        serializes = flat.serializes_l
        slot_ptr = flat.slot_ptr_l

        start = self._start
        finish = self._finish
        snap_avail = self._snap_avail
        pre_ms = self._pre_ms
        avail = snap_avail[k].copy()
        makespan = pre_ms[k]

        for j in range(k, self.n):
            snap_avail[j] = avail.copy()
            pre_ms[j] = makespan
            i = order[j]
            d = mapping[i]
            row = i * m
            ready = initial_l[row + d]
            drain = 0.0
            for p, trans in pred_l[i]:
                dp = mapping[p]
                if dp == d and streaming[d]:
                    r = start[p] + fill_l[p * m + dp]
                    fp = finish[p]
                    if fp > drain:
                        drain = fp
                else:
                    r = finish[p] + trans[dp * m + d]
                if r > ready:
                    ready = r
            st = ready
            slot = -1
            if serializes[d]:
                s0 = slot_ptr[d]
                s1 = slot_ptr[d + 1]
                slot = s0
                earliest = avail[s0]
                for q in range(s0 + 1, s1):
                    v = avail[q]
                    if v < earliest:
                        earliest = v
                        slot = q
                if earliest > ready:
                    st = earliest
            fin = st + exec_l[row + d]
            if drain > fin:
                fin = drain
            start[i] = st
            finish[i] = fin
            if slot >= 0:
                avail[slot] = fin
            end = fin + final_l[row + d]
            if end > makespan:
                makespan = end

        # refresh the suffix of the trial mirrors and numpy views
        ts = self._tstart
        tf = self._tfinish
        for j in range(k, self.n):
            i = order[j]
            ts[i] = start[i]
            tf[i] = finish[i]
        np.copyto(self._start_np, start)
        np.copyto(self._finish_np, finish)
        if self.flat.n_slots:
            np.copyto(self._snap_np, snap_avail)
        np.copyto(self._pre_ms_np, pre_ms)
        self.base_makespan = makespan
        return makespan

    # ------------------------------------------------------------------
    @property
    def mapping(self) -> np.ndarray:
        """A copy of the current base mapping."""
        return self._np_map.copy()

    @property
    def base_list(self) -> List[int]:
        """The live base mapping as a Python list — treat as read-only.

        Exposed (not copied) so greedy scans can do per-move no-op checks
        without per-move allocations; it is mutated in place by
        :meth:`apply_move` and stays valid across iterations.
        """
        return self._map
