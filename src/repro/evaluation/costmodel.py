"""Linear-time model-based makespan evaluation (paper Sec. II-B / III-A).

The paper's key enabler is a cost function that re-evaluates a *complete*
mapping in O(edges), so the greedy decomposition mapper can afford a full
re-evaluation per candidate move.  :class:`CostModel` implements that
function as a list-scheduling simulation over a fixed priority order:

- tasks are visited in a topological *schedule* order;
- a task's ready time is the max over its predecessors of
  ``finish(pred) + transfer`` (transfer is zero on the same device);
- serializing devices (CPU, GPU) offer a bounded number of concurrent task
  ``slots`` — the task starts at ``max(ready, earliest_slot_available)``
  (a 16-core CPU is 4 slots of 4 cores; the GPU is a single slot);
- the FPGA is *spatial*: no serialization, instead the total mapped task
  ``area`` must fit the device (hard feasibility);
- **streaming**: for an edge ``u -> v`` with both tasks on a streaming
  device, ``v`` starts once ``u``'s pipeline is filled
  (``start(u) + exec(u) / streamability(u)``) instead of after ``u``
  finishes, and ``v`` cannot finish before ``u`` does (pipeline drain) —
  this is the dataflow behaviour that makes co-mapping whole subgraphs to
  the FPGA attractive, which the series-parallel decomposition exploits;
- source tasks mapped off-host pay the initial host-to-device transfer of
  their input; sink tasks pay the return transfer of their result
  (volume = input volume capped at one edge unit, see ``_sink_return_mb``).

All tables (execution times, per-edge transfer costs for every device pair)
are precomputed once per graph, so one evaluation is a tight O(V + E) loop —
the hot path of the whole library (hpc guide: optimize the bottleneck only).

Evaluation architecture (kernel + delta):

- the tables are flattened once into a :class:`repro.evaluation.kernel.FlatModel`
  (CSR predecessor offsets, per-edge ``m*m`` transfer rows, contiguous
  ``float64`` exec/fill/initial/final) and :meth:`simulate` delegates to
  the shared :func:`repro.evaluation.kernel.simulate_span` loop — every
  caller (construction makespan, the 101-schedule reported suite, the
  GA/tabu/annealing fitness paths) goes through the same kernel;
- the greedy decomposition mappers additionally use
  :class:`repro.evaluation.delta.DeltaEvaluator`, which keeps per-position
  prefix snapshots of ``(start, finish, slot availability, prefix-max
  end)`` under the fixed BFS schedule and re-simulates **only the suffix**
  from the first schedule position a move touches — O(affected suffix)
  instead of O(V + E) per candidate move;
- the population-based mappers (NSGA-II, Pareto NSGA-II) go through
  :meth:`simulate_many`, which evaluates an arbitrary ``(P, n)`` array of
  mappings in one call: vectorized (guard-banded, decision-exact) area
  feasibility over the whole population, then the C kernel's
  ``repro_span_batch_dedup`` entry (lane loop + in-kernel genome dedup +
  infeasible-lane skipping) or, pure-Python, the lockstep numpy batch
  kernel — Python/ctypes dispatch, the dominant cost of a scalar n=50
  evaluation, is paid once per population instead of once per genome;
- exactness contract: kernel, delta and population-batch evaluation
  perform bit-for-bit the same float64 operations in the same order as
  the original nested-list walk (kept as :meth:`_simulate_reference` and
  pinned by ``tests/test_kernel_delta.py`` /
  ``tests/test_batch_population.py``) — they are optimizations, never
  approximations.

Bookkeeping: ``n_simulations`` counts full scratch simulations (one per
:meth:`simulate` call, as before); ``n_delta_evaluations`` counts
incremental suffix re-evaluations and ``delta_work`` accumulates their
cost in full-evaluation equivalents (suffix length / n);
``n_batched_evaluations`` counts lanes evaluated through
:meth:`simulate_many` (each a full pass) and ``n_batch_calls`` the calls,
so ``n_batched_evaluations / n_batch_calls`` is the realized mean batch
width.  ``n_simulations + delta_work + n_batched_evaluations`` is the
model-evaluation effort in units of one O(V + E) pass.
"""

from __future__ import annotations

import ctypes
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..graphs.taskgraph import DEFAULT_DATA_MB, TaskGraph
from ..obs import metrics as _metrics
from ..platform.platform import Platform
from ..platform.taskmodel import exec_time_table
from ._ckernel import load_ckernel
from .kernel import (
    DEDUP_TABLE_FACTOR,
    FlatModel,
    simulate_flat,
    simulate_population,
)

__all__ = ["CostModel", "INFEASIBLE", "AREA_TOL", "area_guard_band"]

#: Makespan reported for mappings that violate a hard constraint.
INFEASIBLE = float("inf")

#: Absolute slack allowed on a device's area budget: a summed usage up to
#: ``capacity + AREA_TOL`` counts as feasible.  One shared constant so the
#: static check (:meth:`CostModel.is_feasible`), its vectorized twin
#: (:meth:`CostModel.feasible_mask`), the incremental delta check
#: (:mod:`repro.evaluation.delta`), the greedy mappers' running area sums
#: and the runtime engine's replan path (``_remap_tasks``) all agree on
#: per-mapping feasibility *at the boundary* — a mapping accepted by the
#: static mapper is never rejected by the runtime, and vice versa.  (The
#: engine's *cross-job* area ledger additionally admits up to
#: :data:`AREA_BAND` beyond this tolerance: concurrent subset sums have
#: no canonical order to recount in, see ``_claim_area``.)
AREA_TOL = 1e-9


def area_guard_band(limit: float) -> float:
    """The :data:`AREA_BAND` guard scaled the way every band comparison
    scales it (``max(1, |limit|)``) — single-sourced so the vectorized
    recount triggers here/in :mod:`repro.evaluation.delta` and the
    runtime ledger's admission slack can never drift apart."""
    a = abs(limit)
    return AREA_BAND * (a if a > 1.0 else 1.0)

#: Width of the guard band around the area-tolerance threshold within
#: which a vectorized (matmul) area sum is re-derived from an exact
#: scratch sum so the feasibility *decision* always matches the scalar
#: :meth:`CostModel.is_feasible` check.  Vectorized vs scratch float
#: error is bounded by a few n*ulp — many orders of magnitude below this
#: — so outside the band both sums land on the same side of the
#: threshold.  (Shared with :mod:`repro.evaluation.delta`.)
AREA_BAND = 1e-6

#: Below this many feasible lanes the pure-Python population path falls
#: back to per-row scalar simulation: the lockstep numpy kernel pays
#: ~25 us of call overhead per schedule position regardless of width,
#: vs ~2 us per position per lane for the scalar loop.
_POP_BATCH_MIN = 16


class CostModel:
    """Precomputed cost tables and the makespan simulation for one graph.

    ``use_ckernel`` selects the compiled C kernel explicitly (``True`` /
    ``False``); the default ``None`` uses it when available (see
    :mod:`repro.evaluation._ckernel`).  Results are identical either way.
    """

    def __init__(
        self,
        graph: TaskGraph,
        platform: Platform,
        *,
        use_ckernel: Optional[bool] = None,
    ) -> None:
        graph.validate()
        self.graph = graph
        self.platform = platform
        self.tasks: List[int] = graph.tasks()
        self.index: Dict[int, int] = {t: i for i, t in enumerate(self.tasks)}
        self.n = len(self.tasks)
        self.m = platform.n_devices

        # --- execution times (n x m), plus list-of-lists fast view -----
        self.exec_table: np.ndarray = exec_time_table(graph, platform)
        self._exec: List[List[float]] = self.exec_table.tolist()

        # --- predecessor structure (flattened) -------------------------
        # _pred[i] = list of (pred_index, transfer_row) where transfer_row
        # is an m*m nested list: transfer_row[du][dv] = transfer seconds.
        # On a topology-aware platform these matrices are already the
        # *routed effective* costs (multi-hop latencies summed,
        # bandwidths composed), so interconnect topology is priced here,
        # at table-build time, and nowhere in the simulation inner loop.
        self._pred: List[List[Tuple[int, List[List[float]]]]] = []
        lat = platform.latency_s
        bw = platform.bandwidth_gbps
        for t in self.tasks:
            plist = []
            for p in graph.predecessors(t):
                data = graph.data_mb(p, t)
                row = (lat + data / 1000.0 / bw).tolist()
                plist.append((self.index[p], row))
            self._pred.append(plist)

        # --- streaming support ------------------------------------------
        self._streaming_dev: List[bool] = [d.streaming for d in platform.devices]
        self._serializes: List[bool] = [d.serializes for d in platform.devices]
        self._slots: List[int] = [d.slots for d in platform.devices]
        # pipeline fill time of task i on device d = exec / streamability
        stream = np.array(
            [max(graph.params(t).streamability, 1.0) for t in self.tasks]
        )
        self._fill: List[List[float]] = (
            self.exec_table / stream[:, None]
        ).tolist()

        # --- host I/O for sources and sinks ------------------------------
        host = platform.host_index
        self._initial: List[List[float]] = []
        self._final: List[List[float]] = []
        for i, t in enumerate(self.tasks):
            if graph.in_degree(t) == 0:
                inp = graph.input_mb(t)
                self._initial.append(
                    [platform.transfer_time(host, d, inp) for d in range(self.m)]
                )
            else:
                self._initial.append([0.0] * self.m)
            if graph.out_degree(t) == 0:
                out = self._sink_return_mb(t)
                self._final.append(
                    [platform.transfer_time(d, host, out) for d in range(self.m)]
                )
            else:
                self._final.append([0.0] * self.m)

        # --- area constraints -------------------------------------------
        self._area = np.array([graph.params(t).area for t in self.tasks])
        self._area_limits: Dict[int, float] = platform.area_capacities()

        # --- default schedule (breadth-first) ----------------------------
        self.bfs_order: List[int] = [self.index[t] for t in graph.bfs_order()]

        # --- flat-array kernel view (see module docstring) ---------------
        self.flat = FlatModel(
            exec_table=self.exec_table,
            fill_table=np.asarray(self._fill, dtype=np.float64),
            initial_table=np.asarray(self._initial, dtype=np.float64),
            final_table=np.asarray(self._final, dtype=np.float64),
            pred_lists=self._pred,
            streaming=self._streaming_dev,
            serializes=self._serializes,
            slots=self._slots,
        )

        # --- compiled kernel (optional, bit-identical) -------------------
        self.bfs_order_np = np.asarray(self.bfs_order, dtype=np.int64)
        self._use_ckernel = use_ckernel
        self._init_ckernel(use_ckernel)

        #: number of full makespan simulations performed (harness stats)
        self.n_simulations = 0
        #: number of incremental suffix re-evaluations (delta evaluator)
        self.n_delta_evaluations = 0
        #: delta effort in full-evaluation equivalents (suffix length / n)
        self.delta_work = 0.0
        #: lanes evaluated through the population entry (simulate_many);
        #: each lane is one full pass, counted here instead of
        #: ``n_simulations`` so callers can prove the batch path is taken
        self.n_batched_evaluations = 0
        #: number of simulate_many calls that simulated at least one lane
        self.n_batch_calls = 0

    # ------------------------------------------------------------------
    def _init_ckernel(self, use_ckernel: Optional[bool]) -> None:
        self._ck = None
        self._ck_ctx = None
        if use_ckernel is False:
            return
        ck = load_ckernel()
        if ck is None:
            if use_ckernel is True:
                raise RuntimeError("C kernel requested but unavailable")
            return
        self._ck = ck
        self._ck_ctx = ck.make_ctx(self.flat)
        self._ck_ctx_p = ctypes.byref(self._ck_ctx)
        self._ws_start = np.empty(self.n)
        self._ws_finish = np.empty(self.n)
        self._ws_avail = np.empty(max(1, self.flat.n_slots))
        # raw data pointers cached once: ndarray.ctypes.data costs ~1 us
        # per access, which would dominate a batched call
        self._ws_start_p = self._ws_start.ctypes.data
        self._ws_finish_p = self._ws_finish.ctypes.data
        self._ws_avail_p = self._ws_avail.ctypes.data
        self._bfs_order_p = self.bfs_order_np.ctypes.data
        self._span_batch_c = ck.lib.repro_span_batch
        self._span_batch_dedup_c = ck.lib.repro_span_batch_dedup
        self._dedup_table: Optional[np.ndarray] = None

    # -- pickling: ctypes handles cannot cross process boundaries --------
    def __getstate__(self):
        state = self.__dict__.copy()
        for key in ("_ck", "_ck_ctx", "_ck_ctx_p", "_ws_start",
                    "_ws_finish", "_ws_avail", "_ws_start_p",
                    "_ws_finish_p", "_ws_avail_p", "_bfs_order_p",
                    "_span_batch_c", "_span_batch_dedup_c",
                    "_dedup_table"):
            state.pop(key, None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        # reload/recompile lazily in the receiving process (e.g. a
        # repro.parallel worker), honouring the constructor's explicit
        # use_ckernel choice; auto falls back to the Python kernel when
        # the receiving host cannot build the C kernel
        pref = state.get("_use_ckernel")
        self._init_ckernel(None if pref is True else pref)

    # ------------------------------------------------------------------
    def _sink_return_mb(self, t: int) -> float:
        """Result volume a sink returns to the host (capped at one edge unit)."""
        return min(self.graph.input_mb(t), DEFAULT_DATA_MB)

    # ------------------------------------------------------------------
    # feasibility
    # ------------------------------------------------------------------
    def area_usage(self, mapping: Sequence[int]) -> Dict[int, float]:
        """Summed task area per area-constrained device."""
        mapping = np.asarray(mapping)
        return {
            d: float(self._area[mapping == d].sum()) for d in self._area_limits
        }

    def is_feasible(self, mapping: Sequence[int]) -> bool:
        """True iff all device area budgets are respected."""
        usage = self.area_usage(mapping)
        return all(usage[d] <= self._area_limits[d] + AREA_TOL for d in usage)

    def feasible_mask(self, mappings: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`is_feasible` over the rows of ``(P, n)``.

        Per-device usage comes from one matmul over the whole population;
        rows whose vectorized sum falls within :data:`AREA_BAND` of the
        tolerance threshold are re-derived from the exact scratch sum
        (same float summation order as :meth:`area_usage`), so every
        row's *decision* matches the scalar check exactly.
        """
        mask = None
        area = self._area
        for d, capacity in self._area_limits.items():
            usage = (mappings == d) @ area
            limit = capacity + AREA_TOL
            band = area_guard_band(limit)
            close = np.abs(usage - limit) <= band
            if close.any():
                for r in np.flatnonzero(close):
                    usage[r] = area[mappings[r] == d].sum()
            ok = usage <= limit
            mask = ok if mask is None else mask & ok
        if mask is None:
            return np.ones(len(mappings), dtype=bool)
        return mask

    def simulate_many(
        self,
        mappings: np.ndarray,
        order: Optional[Sequence[int]] = None,
        *,
        check_feasibility: bool = True,
        contention: bool = True,
        dedup: bool = False,
    ) -> np.ndarray:
        """Makespans of every row of a ``(P, n)`` array of mappings.

        The multi-lane entry behind
        :meth:`~repro.evaluation.evaluator.MappingEvaluator.construction_makespans`:
        one call evaluates a whole population.  With the C kernel loaded
        the rows run through the native ``repro_span_batch`` lane loop
        (one ctypes call per population instead of one per genome); the
        pure-Python path uses the lockstep numpy batch kernel
        (:func:`repro.evaluation.kernel.simulate_population`), falling
        back to per-row scalar simulation below ``_POP_BATCH_MIN`` lanes.
        Every lane is bit-identical to a scalar :meth:`simulate` of that
        row (:data:`INFEASIBLE` for rows failing the area check).

        With ``dedup=True`` (and the C kernel loaded) lanes run through
        ``repro_span_batch_dedup``: identical rows are simulated once and
        share the exact value (verified by full row comparison in the
        kernel), and only the *distinct* simulated lanes count toward
        ``n_batched_evaluations``.  On the pure-Python path ``dedup`` is
        ignored here — :meth:`MappingEvaluator.construction_makespans`
        performs the equivalent vectorized dedup before calling in.

        Lanes count toward ``n_batched_evaluations`` (not
        ``n_simulations``) and each call toward ``n_batch_calls``.
        """
        pop = np.ascontiguousarray(mappings, dtype=np.int64)
        if pop.ndim != 2 or pop.shape[1] != self.n:
            raise ValueError(
                f"expected a (P, {self.n}) array of mappings, got {pop.shape}"
            )
        if pop.shape[0] == 0:
            return np.empty(0)
        if order is None:
            order_p = self._bfs_order_p if self._ck is not None else None
        elif self._ck is not None:
            order_np = np.ascontiguousarray(order, dtype=np.int64)
            order_p = order_np.ctypes.data
        if self._ck is not None and dedup:
            feas_p = 0
            if check_feasibility:
                feas = self.feasible_mask(pop)
                if not feas.any():
                    return np.full(pop.shape[0], INFEASIBLE)
                feas_p = feas.view(np.uint8).ctypes.data
            n_lanes = pop.shape[0]
            res = np.empty(n_lanes)
            table_size = 1 << (DEDUP_TABLE_FACTOR * n_lanes - 1).bit_length()
            if self._dedup_table is None or len(self._dedup_table) < table_size:
                self._dedup_table = np.empty(table_size, dtype=np.int64)
            simulated = self._span_batch_dedup_c(
                self._ck_ctx_p,
                pop.ctypes.data,
                order_p,
                n_lanes,
                feas_p,
                res.ctypes.data,
                self._dedup_table.ctypes.data,
                table_size,
                self._ws_start_p,
                self._ws_finish_p,
                self._ws_avail_p,
                1 if contention else 0,
            )
            if simulated:
                self.n_batched_evaluations += simulated
                self.n_batch_calls += 1
            registry = _metrics.get_registry()
            if registry is not None:
                registry.counter("kernel.calls.c_dedup").inc()
                registry.histogram("kernel.batch_size").observe_int(n_lanes)
                registry.counter("kernel.dedup_hits").inc(n_lanes - simulated)
                registry.counter("kernel.dedup_lanes").inc(n_lanes)
            return res
        idx = None
        if check_feasibility:
            feas = self.feasible_mask(pop)
            if not feas.all():
                out = np.full(pop.shape[0], INFEASIBLE)
                idx = np.flatnonzero(feas)
                if idx.size == 0:
                    return out
                pop = np.ascontiguousarray(pop[idx])
        n_lanes = pop.shape[0]
        self.n_batched_evaluations += n_lanes
        self.n_batch_calls += 1
        registry = _metrics.get_registry()
        if registry is not None:
            path = (
                "c_batch" if self._ck is not None
                else "py_batch" if n_lanes >= _POP_BATCH_MIN
                else "py_scalar"
            )
            registry.counter(f"kernel.calls.{path}").inc()
            registry.histogram("kernel.batch_size").observe_int(n_lanes)
        res = np.empty(n_lanes)
        if self._ck is not None:
            self._span_batch_c(
                self._ck_ctx_p,
                pop.ctypes.data,
                order_p,
                n_lanes,
                res.ctypes.data,
                self._ws_start_p,
                self._ws_finish_p,
                self._ws_avail_p,
                1 if contention else 0,
            )
        else:
            ord_l = self.bfs_order if order is None else [int(i) for i in order]
            if n_lanes >= _POP_BATCH_MIN:
                res = simulate_population(
                    self.flat, pop, ord_l, contention=contention
                )
            else:
                for b in range(n_lanes):
                    res[b] = simulate_flat(
                        self.flat, pop[b].tolist(), ord_l,
                        contention=contention,
                    )
        if idx is None:
            return res
        out[idx] = res
        return out

    # ------------------------------------------------------------------
    # simulation
    # ------------------------------------------------------------------
    def simulate(
        self,
        mapping: Sequence[int],
        order: Optional[Sequence[int]] = None,
        *,
        check_feasibility: bool = True,
        contention: bool = True,
    ) -> float:
        """Makespan of ``mapping`` under a topological ``order`` (task indices).

        ``order`` defaults to the breadth-first schedule.  Returns
        :data:`INFEASIBLE` if an area budget is violated.  With
        ``contention=False`` the device-serialization constraint is dropped
        (used for the critical-path lower bound).

        Delegates to the flat-array kernel
        (:func:`repro.evaluation.kernel.simulate_span`); results are
        bit-identical to :meth:`_simulate_reference`.
        """
        if check_feasibility and not self.is_feasible(mapping):
            return INFEASIBLE
        self.n_simulations += 1
        if self._ck is not None:
            if isinstance(mapping, np.ndarray) and mapping.dtype == np.int64:
                map_np = np.ascontiguousarray(mapping)
            else:
                map_np = np.ascontiguousarray(mapping, dtype=np.int64)
            if order is None:
                order_np = self.bfs_order_np
            elif isinstance(order, np.ndarray) and order.dtype == np.int64:
                order_np = np.ascontiguousarray(order)
            else:
                order_np = np.ascontiguousarray(order, dtype=np.int64)
            return self._ck.lib.repro_span(
                self._ck_ctx_p,
                map_np.ctypes.data,
                order_np.ctypes.data,
                self._ws_start.ctypes.data,
                self._ws_finish.ctypes.data,
                self._ws_avail.ctypes.data,
                1 if contention else 0,
            )
        if order is None:
            order = self.bfs_order
        if isinstance(mapping, np.ndarray):
            mapping = mapping.tolist()
        else:
            mapping = list(mapping)
        return simulate_flat(self.flat, mapping, order, contention=contention)

    def _simulate_reference(
        self,
        mapping: Sequence[int],
        order: Optional[Sequence[int]] = None,
        *,
        check_feasibility: bool = True,
        contention: bool = True,
    ) -> float:
        """The original nested-list walk, kept as the executable spec.

        The kernel (:meth:`simulate`) and the incremental delta evaluator
        must reproduce this bit-for-bit (``tests/test_kernel_delta.py``);
        it is not used on any hot path.  Does not touch the counters.
        """
        if check_feasibility and not self.is_feasible(mapping):
            return INFEASIBLE
        if order is None:
            order = self.bfs_order
        mapping = list(mapping)

        exec_ = self._exec
        fill = self._fill
        pred = self._pred
        streaming_dev = self._streaming_dev
        serializes = self._serializes
        initial = self._initial
        final = self._final

        start = [0.0] * self.n
        finish = [0.0] * self.n
        # per-device slot availability times (earliest-slot list scheduling)
        avail = [[0.0] * s for s in self._slots]
        makespan = 0.0

        for i in order:
            d = mapping[i]
            ready = initial[i][d]
            drain = 0.0
            for p, trans in pred[i]:
                dp = mapping[p]
                if dp == d and streaming_dev[d]:
                    # on-chip streaming: start after the producer's pipeline
                    # is filled; cannot finish before the producer finishes.
                    r = start[p] + fill[p][dp]
                    fp = finish[p]
                    if fp > drain:
                        drain = fp
                else:
                    r = finish[p] + trans[dp][d]
                if r > ready:
                    ready = r
            st = ready
            slot = -1
            if contention and serializes[d]:
                slots_d = avail[d]
                slot = 0
                earliest = slots_d[0]
                for j in range(1, len(slots_d)):
                    if slots_d[j] < earliest:
                        earliest = slots_d[j]
                        slot = j
                if earliest > ready:
                    st = earliest
            fin = st + exec_[i][d]
            if drain > fin:
                fin = drain
            start[i] = st
            finish[i] = fin
            if slot >= 0:
                avail[d][slot] = fin
            end = fin + final[i][d]
            if end > makespan:
                makespan = end
        return makespan

    # ------------------------------------------------------------------
    # bounds (used by tests and sanity checks)
    # ------------------------------------------------------------------
    def critical_path_bound(self, mapping: Sequence[int]) -> float:
        """Makespan without device contention: a lower bound on the makespan.

        This is the same monotone recurrence as :meth:`simulate` with the
        serialization constraint dropped, so it correctly accounts for
        streaming overlap (a plain longest-path over execution times would
        *over*-estimate streamed chains and not be a valid bound).
        """
        return self.simulate(
            list(mapping), check_feasibility=False, contention=False
        )

    def serial_bound(self, mapping: Sequence[int]) -> float:
        """Sum of all execution, transfer and I/O times: an upper bound."""
        mapping = list(mapping)
        total = 0.0
        for i in range(self.n):
            d = mapping[i]
            total += self._exec[i][d] + self._initial[i][d] + self._final[i][d]
            for p, trans in self._pred[i]:
                dp = mapping[p]
                if not (dp == d and self._streaming_dev[d]):
                    total += trans[dp][d]
        return total
