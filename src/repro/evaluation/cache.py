"""Memoized construction-makespan evaluation.

Population-based mappers (NSGA-II, tabu, annealing) re-evaluate identical
mappings constantly — elitism keeps survivors around, crossover recreates
parents, and tabu cycles revisit states.  :class:`CachedEvaluator` wraps a
:class:`~repro.evaluation.evaluator.MappingEvaluator` with an exact
byte-keyed memo table for the construction makespan (the value is
deterministic per mapping, so caching is lossless).  Both the scalar
entry and the batched ``construction_makespans`` population entry go
through the same memo, so a generation's repeat genomes are answered
from cache and only the distinct misses reach the batch kernel.

This is the pragmatic counterpart to the paper's gamma-threshold idea: the
paper amortizes evaluations across *similar* mappings via expectations; the
cache amortizes across *identical* mappings without any approximation.

    cached = CachedEvaluator(evaluator)
    NsgaIIMapper(generations=500).map(cached, rng)
    print(cached.hit_rate)
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Sequence

import numpy as np

from .evaluator import MappingEvaluator

__all__ = ["CachedEvaluator"]


class CachedEvaluator:
    """Drop-in wrapper memoizing ``construction_makespan``.

    Implements the subset of the :class:`MappingEvaluator` interface the
    mappers use, delegating everything else.  The memo table is a bounded
    LRU (``max_entries``); ``hits``/``misses`` expose its effectiveness.
    """

    def __init__(
        self, evaluator: MappingEvaluator, *, max_entries: int = 100_000
    ) -> None:
        if max_entries < 1:
            raise ValueError("cache needs at least one entry")
        self._inner = evaluator
        self._memo: OrderedDict[bytes, float] = OrderedDict()
        self._max = max_entries
        self.hits = 0
        self.misses = 0

    # -- cached path -------------------------------------------------------
    def construction_makespan(self, mapping: Sequence[int]) -> float:
        key = np.asarray(mapping, dtype=np.int64).tobytes()
        memo = self._memo
        found = memo.get(key)
        if found is not None:
            self.hits += 1
            memo.move_to_end(key)
            return found
        self.misses += 1
        value = self._inner.construction_makespan(mapping)
        memo[key] = value
        if len(memo) > self._max:
            memo.popitem(last=False)
        return value

    def construction_makespans(self, mappings: Sequence[Sequence[int]]) -> np.ndarray:
        """Batched :meth:`construction_makespan` with per-row memoization.

        Rows already in the memo are answered from it (counted as hits);
        the remaining rows go through the inner evaluator's batched
        ``construction_makespans`` in one call — which dedups repeats
        within the miss block itself — and are inserted into the memo.
        Per row, values are bit-identical to the scalar cached path, so
        mappers that switch between the two see identical trajectories.
        """
        pop = np.ascontiguousarray(mappings, dtype=np.int64)
        if pop.ndim != 2:
            raise ValueError(f"expected a (P, n) population, got {pop.shape}")
        out = np.empty(len(pop))
        memo = self._memo
        keys = [pop[r].tobytes() for r in range(len(pop))]
        miss_rows = []
        for r, key in enumerate(keys):
            found = memo.get(key)
            if found is not None:
                self.hits += 1
                memo.move_to_end(key)
                out[r] = found
            else:
                miss_rows.append(r)
        if miss_rows:
            self.misses += len(miss_rows)
            vals = self._inner.construction_makespans(pop[np.asarray(miss_rows)])
            for r, v in zip(miss_rows, vals):
                out[r] = v
                memo[keys[r]] = float(v)
                if len(memo) > self._max:
                    memo.popitem(last=False)
        return out

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        self._memo.clear()
        self.hits = 0
        self.misses = 0

    # -- delegation --------------------------------------------------------
    def __getattr__(self, name):
        # During unpickling, __getattr__ can fire before __dict__ is
        # restored (pickle probes e.g. __setstate__).  Delegating those
        # probes through self._inner would recurse forever — look _inner
        # up via __dict__ and fail cleanly for dunders and _inner itself,
        # so cached evaluators survive the repro.parallel worker round
        # trip.
        if name == "_inner" or (name.startswith("__") and name.endswith("__")):
            raise AttributeError(name)
        inner = self.__dict__.get("_inner")
        if inner is None:
            raise AttributeError(name)
        return getattr(inner, name)

    @property
    def graph(self):
        return self._inner.graph

    @property
    def platform(self):
        return self._inner.platform

    @property
    def model(self):
        return self._inner.model
