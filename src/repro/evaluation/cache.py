"""Memoized construction-makespan evaluation.

Population-based mappers (NSGA-II, tabu, annealing) re-evaluate identical
mappings constantly — elitism keeps survivors around, crossover recreates
parents, and tabu cycles revisit states.  :class:`CachedEvaluator` wraps a
:class:`~repro.evaluation.evaluator.MappingEvaluator` with an exact
byte-keyed memo table for the construction makespan (the value is
deterministic per mapping, so caching is lossless).

This is the pragmatic counterpart to the paper's gamma-threshold idea: the
paper amortizes evaluations across *similar* mappings via expectations; the
cache amortizes across *identical* mappings without any approximation.

    cached = CachedEvaluator(evaluator)
    NsgaIIMapper(generations=500).map(cached, rng)
    print(cached.hit_rate)
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Sequence

import numpy as np

from .evaluator import MappingEvaluator

__all__ = ["CachedEvaluator"]


class CachedEvaluator:
    """Drop-in wrapper memoizing ``construction_makespan``.

    Implements the subset of the :class:`MappingEvaluator` interface the
    mappers use, delegating everything else.  The memo table is a bounded
    LRU (``max_entries``); ``hits``/``misses`` expose its effectiveness.
    """

    def __init__(
        self, evaluator: MappingEvaluator, *, max_entries: int = 100_000
    ) -> None:
        if max_entries < 1:
            raise ValueError("cache needs at least one entry")
        self._inner = evaluator
        self._memo: OrderedDict[bytes, float] = OrderedDict()
        self._max = max_entries
        self.hits = 0
        self.misses = 0

    # -- cached path -------------------------------------------------------
    def construction_makespan(self, mapping: Sequence[int]) -> float:
        key = np.asarray(mapping, dtype=np.int64).tobytes()
        memo = self._memo
        found = memo.get(key)
        if found is not None:
            self.hits += 1
            memo.move_to_end(key)
            return found
        self.misses += 1
        value = self._inner.construction_makespan(mapping)
        memo[key] = value
        if len(memo) > self._max:
            memo.popitem(last=False)
        return value

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        self._memo.clear()
        self.hits = 0
        self.misses = 0

    # -- delegation --------------------------------------------------------
    def __getattr__(self, name):
        # During unpickling, __getattr__ can fire before __dict__ is
        # restored (pickle probes e.g. __setstate__).  Delegating those
        # probes through self._inner would recurse forever — look _inner
        # up via __dict__ and fail cleanly for dunders and _inner itself,
        # so cached evaluators survive the repro.parallel worker round
        # trip.
        if name == "_inner" or (name.startswith("__") and name.endswith("__")):
            raise AttributeError(name)
        inner = self.__dict__.get("_inner")
        if inner is None:
            raise AttributeError(name)
        return getattr(inner, name)

    @property
    def graph(self):
        return self._inner.graph

    @property
    def platform(self):
        return self._inner.platform

    @property
    def model(self):
        return self._inner.model
