"""Energy model — the multi-objective extension (paper Sec. V).

The paper notes its "basic algorithmic ideas [...] can easily be transferred
to multi-objective optimization"; this module supplies the second objective:
total energy of one application run under a given mapping,

    E = sum_tasks  exec_time(t, dev(t)) * watts_active(dev(t))   # compute
      + sum_edges  data_mb * JOULES_PER_MB[link]                 # transfers
      + makespan * sum_devices watts_idle                        # idle floor

The structure mirrors the makespan model: co-locating communicating tasks
saves transfer energy, the FPGA is by far the most energy-efficient
processor (18 W vs 155/210 W), and faster makespans reduce the idle floor —
so makespan and energy are correlated but *not* aligned: the GPU often wins
time while losing energy, which is exactly the tension a multi-objective
mapper has to expose (see :mod:`repro.mappers.multiobjective`).

:meth:`EnergyModel.energy` is the Pareto NSGA-II fitness hot path (one
call per distinct genome per generation), so it runs on flat Python
lists precomputed at construction — the same accumulation order as the
original table-walking loop (kept as :meth:`EnergyModel._energy_reference`
and pinned bit-for-bit by ``tests/test_batch_population.py``), an
optimization, never an approximation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .costmodel import INFEASIBLE, CostModel

__all__ = ["JOULES_PER_MB", "energy_joules", "EnergyModel"]

#: Transfer energy per MB moved across a PCIe-class link (both endpoints
#: busy plus DMA), a coarse literature-typical constant.
JOULES_PER_MB = 0.02


class EnergyModel:
    """Precomputed energy tables for one graph/platform pair.

    Shares the :class:`CostModel`'s execution-time tables; one evaluation is
    O(V + E) like the makespan simulation.
    """

    def __init__(self, model: CostModel) -> None:
        self.model = model
        platform = model.platform
        self._active = [d.watts_active for d in platform.devices]
        self._idle_total = float(sum(d.watts_idle for d in platform.devices))
        # per-task compute energy per device: exec * active watts
        self._compute = model.exec_table * np.asarray(self._active)[None, :]
        # flat mirrors for the fast path: plain Python lists, walked in
        # exactly the reference loop's order (see module docstring)
        self._compute_l: List[List[float]] = self._compute.tolist()
        g = model.graph
        tasks = model.tasks
        self._host = model.platform.host_index
        #: per task: [(pred_index, edge data_mb), ...] in CostModel._pred order
        self._edges_l: List[List[Tuple[int, float]]] = [
            [
                (p, g.data_mb(tasks[p], t))
                for p, _ in model._pred[i]  # noqa: SLF001
            ]
            for i, t in enumerate(tasks)
        ]
        #: per task: input volume if a source else None / return volume if a sink
        self._input_l: List[Optional[float]] = [
            g.input_mb(t) if g.in_degree(t) == 0 else None for t in tasks
        ]
        self._sink_l: List[Optional[float]] = [
            model._sink_return_mb(t)  # noqa: SLF001
            if g.out_degree(t) == 0
            else None
            for t in tasks
        ]

    def transfer_mb(self, mapping: Sequence[int], i: int) -> float:
        """MB moved to *start* task ``i`` under ``mapping``: its off-device
        predecessor edges plus, for a source off the host, the initial
        host→device input.  The sink's return transfer is separate
        (:meth:`sink_mb`) — it happens after the task finishes.

        This is the per-task decomposition of the transfer term of
        :meth:`energy`; the runtime engine charges it at task start so
        re-executed (rolled-back) work pays its transfers again.
        """
        d = mapping[i]
        mb = 0.0
        for p, vol in self._edges_l[i]:
            if mapping[p] != d:
                mb += vol
        inp = self._input_l[i]
        if inp is not None and d != self._host:
            mb += inp
        return mb

    def sink_mb(self, mapping: Sequence[int], i: int) -> float:
        """MB of task ``i``'s device→host result transfer (0 if not an
        off-host sink) — the counterpart of :meth:`transfer_mb`."""
        out = self._sink_l[i]
        if out is not None and mapping[i] != self._host:
            return out
        return 0.0

    def energy(
        self,
        mapping: Sequence[int],
        *,
        makespan: Optional[float] = None,
        check_feasibility: bool = True,
    ) -> float:
        """Total energy (J) of one run; INFEASIBLE if area is violated.

        ``makespan`` may be passed to reuse an already-computed value;
        otherwise the BFS-schedule makespan is simulated.  Accumulation
        order is bit-identical to :meth:`_energy_reference`.
        """
        model = self.model
        if check_feasibility and not model.is_feasible(mapping):
            return INFEASIBLE
        if isinstance(mapping, np.ndarray):
            mapping = mapping.tolist()
        else:
            mapping = list(mapping)
        if makespan is None:
            makespan = model.simulate(mapping, check_feasibility=False)
        # one fused pass: `total` still receives all compute terms first
        # (in task order) and `transfer_mb` accumulates in the reference
        # loop's edge order — separate accumulators, so interleaving the
        # passes changes neither accumulation order
        compute = self._compute_l
        total = 0.0
        transfer_mb = 0.0
        host = self._host
        input_l = self._input_l
        sink_l = self._sink_l
        for i, edges in enumerate(self._edges_l):
            d = mapping[i]
            total += compute[i][d]
            for p, mb in edges:
                if mapping[p] != d:
                    transfer_mb += mb
            if input_l[i] is not None and d != host:
                transfer_mb += input_l[i]
            if sink_l[i] is not None and d != host:
                transfer_mb += sink_l[i]
        total += transfer_mb * JOULES_PER_MB
        total += makespan * self._idle_total
        return total

    def _energy_reference(
        self,
        mapping: Sequence[int],
        *,
        makespan: Optional[float] = None,
        check_feasibility: bool = True,
    ) -> float:
        """The original table-walking loop, kept as the executable spec.

        :meth:`energy` must reproduce it bit-for-bit
        (``tests/test_batch_population.py``); not used on any hot path.
        """
        model = self.model
        if check_feasibility and not model.is_feasible(mapping):
            return INFEASIBLE
        mapping = list(mapping)
        if makespan is None:
            makespan = model.simulate(mapping, check_feasibility=False)
        compute = self._compute
        total = 0.0
        for i in range(model.n):
            total += compute[i][mapping[i]]
        # transfer energy: off-device edges plus source/sink host I/O
        transfer_mb = 0.0
        g = model.graph
        tasks = model.tasks
        host = model.platform.host_index
        for i, t in enumerate(tasks):
            d = mapping[i]
            for p, _ in model._pred[i]:  # noqa: SLF001
                if mapping[p] != d:
                    transfer_mb += g.data_mb(tasks[p], t)
            if g.in_degree(t) == 0 and d != host:
                transfer_mb += g.input_mb(t)
            if g.out_degree(t) == 0 and d != host:
                transfer_mb += model._sink_return_mb(t)  # noqa: SLF001
        total += transfer_mb * JOULES_PER_MB
        total += makespan * self._idle_total
        return total


def energy_joules(
    model: CostModel,
    mapping: Sequence[int],
    *,
    makespan: Optional[float] = None,
) -> float:
    """One-shot energy evaluation (constructs a throwaway table)."""
    return EnergyModel(model).energy(mapping, makespan=makespan)
