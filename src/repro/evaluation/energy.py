"""Energy model — the multi-objective extension (paper Sec. V).

The paper notes its "basic algorithmic ideas [...] can easily be transferred
to multi-objective optimization"; this module supplies the second objective:
total energy of one application run under a given mapping,

    E = sum_tasks  exec_time(t, dev(t)) * watts_active(dev(t))   # compute
      + sum_edges  data_mb * JOULES_PER_MB[link]                 # transfers
      + makespan * sum_devices watts_idle                        # idle floor

The structure mirrors the makespan model: co-locating communicating tasks
saves transfer energy, the FPGA is by far the most energy-efficient
processor (18 W vs 155/210 W), and faster makespans reduce the idle floor —
so makespan and energy are correlated but *not* aligned: the GPU often wins
time while losing energy, which is exactly the tension a multi-objective
mapper has to expose (see :mod:`repro.mappers.multiobjective`).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .costmodel import INFEASIBLE, CostModel

__all__ = ["JOULES_PER_MB", "energy_joules", "EnergyModel"]

#: Transfer energy per MB moved across a PCIe-class link (both endpoints
#: busy plus DMA), a coarse literature-typical constant.
JOULES_PER_MB = 0.02


class EnergyModel:
    """Precomputed energy tables for one graph/platform pair.

    Shares the :class:`CostModel`'s execution-time tables; one evaluation is
    O(V + E) like the makespan simulation.
    """

    def __init__(self, model: CostModel) -> None:
        self.model = model
        platform = model.platform
        self._active = [d.watts_active for d in platform.devices]
        self._idle_total = float(sum(d.watts_idle for d in platform.devices))
        # per-task compute energy per device: exec * active watts
        self._compute = model.exec_table * np.asarray(self._active)[None, :]

    def energy(
        self,
        mapping: Sequence[int],
        *,
        makespan: Optional[float] = None,
        check_feasibility: bool = True,
    ) -> float:
        """Total energy (J) of one run; INFEASIBLE if area is violated.

        ``makespan`` may be passed to reuse an already-computed value;
        otherwise the BFS-schedule makespan is simulated.
        """
        model = self.model
        if check_feasibility and not model.is_feasible(mapping):
            return INFEASIBLE
        mapping = list(mapping)
        if makespan is None:
            makespan = model.simulate(mapping, check_feasibility=False)
        compute = self._compute
        total = 0.0
        for i in range(model.n):
            total += compute[i][mapping[i]]
        # transfer energy: off-device edges plus source/sink host I/O
        transfer_mb = 0.0
        g = model.graph
        tasks = model.tasks
        host = model.platform.host_index
        for i, t in enumerate(tasks):
            d = mapping[i]
            for p, _ in model._pred[i]:  # noqa: SLF001
                if mapping[p] != d:
                    transfer_mb += g.data_mb(tasks[p], t)
            if g.in_degree(t) == 0 and d != host:
                transfer_mb += g.input_mb(t)
            if g.out_degree(t) == 0 and d != host:
                transfer_mb += model._sink_return_mb(t)  # noqa: SLF001
        total += transfer_mb * JOULES_PER_MB
        total += makespan * self._idle_total
        return total


def energy_joules(
    model: CostModel,
    mapping: Sequence[int],
    *,
    makespan: Optional[float] = None,
) -> float:
    """One-shot energy evaluation (constructs a throwaway table)."""
    return EnergyModel(model).energy(mapping, makespan=makespan)
