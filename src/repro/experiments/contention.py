"""Shared-resource contention sweep: cross-job FPGA area and link slots.

The analytic model evaluates one job on an otherwise idle platform; a
serving deployment runs a *stream* of jobs that share the reconfigurable
fabric and the host↔device interconnect.  This extension study measures
what that sharing costs: for each (algorithm, link-slot setting, arrival
period) cell it replays a periodic arrival stream through the runtime
engine (:mod:`repro.runtime`) with the cross-job area ledger and the
FIFO transfer-slot model active, and reports

- **throughput** (jobs/s) and the **latency** distribution,
- **area wait** — seconds tasks waited for FPGA fabric held by other
  in-flight jobs (zero in the analytic, per-job-budget world),
- **link wait** — seconds transfers queued for a busy link slot,
- **energy per job** at the :mod:`repro.evaluation.energy` rates.

To make fabric contention real at every scale, the run platform's FPGA
capacity is sized at ``contention_area_headroom`` (default 1.5x) of one
job's mapped footprint: a single job always fits, two overlapping jobs
cannot both hold their full claim — exactly the situation the per-job
area check of PR 1/2 silently allowed and the ledger now arbitrates.
Runs are deterministic (zero noise), so every cell is one exact engine
replay and ``--workers N`` results are trivially bit-identical to serial.

The **topology axis** (``--topology``, :func:`run_topologies`) replays
the same streams over different interconnect *shapes*: the legacy
single shared pool (``"shared"``) versus per-link slot pools on the
:mod:`repro.platform.topologies` presets (star/mesh/ring/NUMA), with
the swept slot width applied per link.  Mappings are computed once per
graph on the nominal platform and shared across every topology cell, so
divergence between e.g. ``mesh`` and ``shared`` at the same slot count
is purely the resource model: routed transfers queue per link instead
of against one global pool.  Results land in
``results/topology_sweep.csv``.

Run:  python -m repro.experiments.contention --scale smoke --csv
      repro experiment contention --scale smoke
      repro experiment contention --scale smoke --topology mesh
"""

from __future__ import annotations

import argparse
import csv
import dataclasses
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, TextIO

import numpy as np

from ..evaluation import MappingEvaluator
from ..graphs.generators import random_sp_graph
from ..mappers import HeftMapper, sp_first_fit
from ..obs import get_reporter
from ..parallel import (
    SupervisedPool,
    parallel_map,
    plan_from_env,
    resolve_workers,
)
from ..platform import paper_platform
from ..platform.platform import Platform
from ..platform.topologies import TOPOLOGY_NAMES, with_topology
from ..runtime import RuntimeEngine, periodic_stream, throughput_report
from .config import get_scale
from .reporting import maybe_close, open_checkpoint, results_dir

__all__ = [
    "ContentionPoint",
    "ContentionResult",
    "TopologyPoint",
    "TopologyResult",
    "run",
    "run_topologies",
    "format_contention_table",
    "format_topology_table",
    "print_report",
    "write_contention_csv",
    "write_topology_csv",
]

#: names accepted by ``--topology``: the legacy shared pool + presets
SWEEP_TOPOLOGIES = ("shared",) + TOPOLOGY_NAMES


@dataclass(frozen=True)
class ContentionPoint:
    """One (algorithm, link_slots, period_frac) cell, mean over graphs."""

    algorithm: str
    link_slots: int            # 0 = unlimited (analytic link model)
    period_frac: float         # arrival period / analytic makespan
    jobs_per_second: float
    latency_mean_s: float
    latency_p95_s: float
    area_wait_s: float         # summed FPGA-area waiting per stream
    link_wait_s: float         # summed link-slot queueing per stream
    energy_per_job_j: float
    makespan_s: float          # stream horizon (first arrival -> done)


@dataclass
class ContentionResult:
    """A full contention sweep: algorithms x link slots x arrival rates."""

    title: str
    points: List[ContentionPoint] = field(default_factory=list)

    def algorithms(self) -> List[str]:
        seen: Dict[str, None] = {}
        for p in self.points:
            seen.setdefault(p.algorithm)
        return list(seen)

    def cell(
        self, algorithm: str, link_slots: int, period_frac: float
    ) -> ContentionPoint:
        for p in self.points:
            if (
                p.algorithm == algorithm
                and p.link_slots == link_slots
                and p.period_frac == period_frac
            ):
                return p
        raise KeyError((algorithm, link_slots, period_frac))


@dataclass(frozen=True)
class TopologyPoint:
    """One (topology, algorithm, link_slots, period_frac) cell."""

    topology: str              # "shared" or a preset topology name
    algorithm: str
    link_slots: int            # slot width (per link for presets); 0 = inf
    period_frac: float
    jobs_per_second: float
    latency_mean_s: float
    latency_p95_s: float
    link_wait_s: float         # summed slot-queue time per stream
    n_link_waits: float        # mean queued-transfer count per stream
    energy_per_job_j: float
    makespan_s: float


@dataclass
class TopologyResult:
    """A topology sweep: interconnect shapes x link slots x arrival rates."""

    title: str
    points: List[TopologyPoint] = field(default_factory=list)

    def topologies(self) -> List[str]:
        seen: Dict[str, None] = {}
        for p in self.points:
            seen.setdefault(p.topology)
        return list(seen)


def _roster():
    return [HeftMapper(), sp_first_fit()]


def _squeeze_fpga(platform: Platform, usage: Dict[int, float],
                  headroom: float) -> Platform:
    """Size area-capped devices at ``headroom x`` one job's footprint."""
    devices = []
    changed = False
    for d, dev in enumerate(platform.devices):
        used = usage.get(d, 0.0)
        if dev.area_capacity is not None and used > 0.0:
            devices.append(dataclasses.replace(
                dev, area_capacity=used * headroom
            ))
            changed = True
        else:
            devices.append(dev)
    if not changed:
        return platform
    return platform.with_devices(devices)


# ---------------------------------------------------------------------------
# parallel work items (module-level: the pool pickles workers by reference)
# ---------------------------------------------------------------------------

def _map_graph_worker(item):
    """Map one graph with the roster; returns (mappings, analytics, usage)."""
    graph, platform, cfg, map_child = item
    mappers = _roster()
    eval_rng, *mapper_rngs = [
        np.random.default_rng(s) for s in map_child.spawn(1 + len(mappers))
    ]
    evaluator = MappingEvaluator(
        graph, platform, rng=eval_rng,
        n_random_schedules=cfg.n_random_schedules,
    )
    mappings: Dict[str, List[int]] = {}
    analytics: Dict[str, float] = {}
    usages: Dict[str, Dict[int, float]] = {}
    for mapper, rng in zip(mappers, mapper_rngs):
        mapping = list(mapper.map(evaluator, rng=rng).mapping)
        mappings[mapper.name] = mapping
        analytics[mapper.name] = evaluator.model.simulate(mapping)
        usages[mapper.name] = evaluator.model.area_usage(mapping)
    return mappings, analytics, usages


def _contention_cell_worker(item):
    """Replay one deterministic arrival stream; returns the cell metrics."""
    graph, run_platform, mapping, analytic, n_jobs, frac, slots = item
    jobs = periodic_stream(graph, mapping, n_jobs, period=frac * analytic)
    engine = RuntimeEngine(run_platform, link_slots=slots)
    trace = engine.run(jobs)
    rep = throughput_report(trace)
    return (
        rep.jobs_per_second, rep.latency_mean, rep.latency_p95,
        trace.area_wait_time, trace.link_wait_time,
        rep.energy_per_job_j, rep.horizon,
    )


def _topology_cell_worker(item):
    """Replay one stream on a (possibly topology-reshaped) platform.

    ``topology == "shared"`` bounds the legacy single pool via the
    engine's ``link_slots``; a preset name reshapes the platform with
    ``slots`` per link and leaves the engine at its default (per-link
    pools).  ``slots == 0`` is unlimited either way; since ``mesh``
    routes are all direct, its ``slots=0`` cells are bit-identical to
    ``shared`` ``slots=0`` — the sweep's built-in equivalence anchor
    (multi-hop shapes like ``star`` still differ there, through routed
    cost alone).
    """
    graph, base_platform, topology, mapping, analytic, n_jobs, frac, slots \
        = item
    jobs = periodic_stream(graph, mapping, n_jobs, period=frac * analytic)
    if topology == "shared":
        engine = RuntimeEngine(base_platform, link_slots=slots)
    else:
        engine = RuntimeEngine(
            with_topology(base_platform, topology, slots=slots)
        )
    trace = engine.run(jobs)
    rep = throughput_report(trace)
    return (
        rep.jobs_per_second, rep.latency_mean, rep.latency_p95,
        trace.link_wait_time, trace.n_link_waits,
        rep.energy_per_job_j, rep.horizon,
    )


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------

def run(
    scale="smoke",
    *,
    seed: int = 79,
    workers: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    checkpoint=None,
    resume: bool = False,
) -> ContentionResult:
    """Sweep link-slot settings and arrival rates under shared resources.

    Every cell replays the *same* mapped jobs (mappings are computed once
    per graph on the nominal platform, seeds are derived per graph), so
    moving along the link-slot or period axis changes only the resource
    model, never the workload — differences are pure contention effect.
    ``checkpoint``/``resume`` journal completed cells (see
    :func:`repro.experiments.reporting.open_checkpoint`).
    """
    cfg = get_scale(scale)
    workers = resolve_workers(workers, cfg.parallel_workers)
    platform = paper_platform()
    root = np.random.SeedSequence(seed)
    graph_seed, map_seed = root.spawn(2)

    graphs = [
        random_sp_graph(cfg.contention_n_tasks, np.random.default_rng(s))
        for s in graph_seed.spawn(cfg.contention_graphs)
    ]
    map_items = [
        (g, platform, cfg, child)
        for g, child in zip(graphs, map_seed.spawn(len(graphs)))
    ]
    journal = open_checkpoint("contention", cfg.name, seed, checkpoint, resume)
    with SupervisedPool(workers, chaos=plan_from_env()) as executor, \
            maybe_close(journal):
        mapped = parallel_map(
            _map_graph_worker, map_items, workers=workers,
            progress=progress, label="mapped graph", executor=executor,
            journal=journal,
        )
        algorithms = list(mapped[0][0])
        # the squeezed platform depends only on (algorithm, graph): build
        # each once instead of per (link_slots, period) cell
        run_platforms = {
            (algorithm, k): _squeeze_fpga(
                platform, mapped[k][2][algorithm],
                cfg.contention_area_headroom,
            )
            for algorithm in algorithms
            for k in range(len(graphs))
        }

        items = []
        for slots in cfg.contention_link_slots:
            for frac in cfg.contention_period_fracs:
                for algorithm in algorithms:
                    for k, graph in enumerate(graphs):
                        mappings, analytics, _ = mapped[k]
                        items.append((
                            graph, run_platforms[algorithm, k],
                            mappings[algorithm],
                            analytics[algorithm], cfg.contention_jobs,
                            frac, slots,
                        ))
        cells = parallel_map(
            _contention_cell_worker, items, workers=workers,
            progress=progress, label="contention cell", executor=executor,
            journal=journal,
        )

    result = ContentionResult(
        title=(
            f"Shared-resource contention: {cfg.contention_jobs}-job streams, "
            f"{cfg.contention_area_headroom:g}x FPGA headroom ({cfg.name})"
        )
    )
    it = iter(cells)
    for slots in cfg.contention_link_slots:
        for frac in cfg.contention_period_fracs:
            for algorithm in algorithms:
                rows = [next(it) for _ in graphs]
                result.points.append(ContentionPoint(
                    algorithm=algorithm,
                    link_slots=slots,
                    period_frac=frac,
                    jobs_per_second=float(np.mean([r[0] for r in rows])),
                    latency_mean_s=float(np.mean([r[1] for r in rows])),
                    latency_p95_s=float(np.mean([r[2] for r in rows])),
                    area_wait_s=float(np.mean([r[3] for r in rows])),
                    link_wait_s=float(np.mean([r[4] for r in rows])),
                    energy_per_job_j=float(np.mean([r[5] for r in rows])),
                    makespan_s=float(np.mean([r[6] for r in rows])),
                ))
        if progress:
            progress(f"link_slots={slots or 'unlimited'} done")
    return result


def run_topologies(
    scale="smoke",
    *,
    topologies: Optional[List[str]] = None,
    seed: int = 79,
    workers: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    checkpoint=None,
    resume: bool = False,
) -> TopologyResult:
    """Sweep interconnect shapes under the shared-resource stream model.

    Mappings are computed once per graph on the *nominal* (uniform)
    platform and replayed on every topology, so a cell difference is
    purely the interconnect model: routed effective costs plus per-link
    slot pools versus the legacy shared pool.  ``topologies`` defaults
    to the scale's ``contention_topologies``; arrival periods reuse the
    nominal analytic makespan so the workload is identical everywhere.
    Deterministic (zero noise): serial and ``--workers N`` runs are
    bit-identical.
    """
    cfg = get_scale(scale)
    if topologies is None:
        topologies = list(cfg.contention_topologies)
    for name in topologies:
        if name not in SWEEP_TOPOLOGIES:
            raise ValueError(
                f"unknown topology {name!r} "
                f"(choose from {', '.join(SWEEP_TOPOLOGIES)})"
            )
    workers = resolve_workers(workers, cfg.parallel_workers)
    platform = paper_platform()
    root = np.random.SeedSequence(seed)
    graph_seed, map_seed = root.spawn(2)

    graphs = [
        random_sp_graph(cfg.contention_n_tasks, np.random.default_rng(s))
        for s in graph_seed.spawn(cfg.contention_graphs)
    ]
    map_items = [
        (g, platform, cfg, child)
        for g, child in zip(graphs, map_seed.spawn(len(graphs)))
    ]
    journal = open_checkpoint("topology", cfg.name, seed, checkpoint, resume)
    with SupervisedPool(workers, chaos=plan_from_env()) as executor, \
            maybe_close(journal):
        mapped = parallel_map(
            _map_graph_worker, map_items, workers=workers,
            progress=progress, label="mapped graph", executor=executor,
            journal=journal,
        )
        algorithms = list(mapped[0][0])
        run_platforms = {
            (algorithm, k): _squeeze_fpga(
                platform, mapped[k][2][algorithm],
                cfg.contention_area_headroom,
            )
            for algorithm in algorithms
            for k in range(len(graphs))
        }

        items = []
        for topology in topologies:
            for slots in cfg.contention_link_slots:
                for frac in cfg.contention_period_fracs:
                    for algorithm in algorithms:
                        for k, graph in enumerate(graphs):
                            mappings, analytics, _ = mapped[k]
                            items.append((
                                graph, run_platforms[algorithm, k],
                                topology, mappings[algorithm],
                                analytics[algorithm], cfg.contention_jobs,
                                frac, slots,
                            ))
        cells = parallel_map(
            _topology_cell_worker, items, workers=workers,
            progress=progress, label="topology cell", executor=executor,
            journal=journal,
        )

    result = TopologyResult(
        title=(
            f"Interconnect topologies: {cfg.contention_jobs}-job streams, "
            f"{'/'.join(topologies)} ({cfg.name})"
        )
    )
    it = iter(cells)
    for topology in topologies:
        for slots in cfg.contention_link_slots:
            for frac in cfg.contention_period_fracs:
                for algorithm in algorithms:
                    rows = [next(it) for _ in graphs]
                    result.points.append(TopologyPoint(
                        topology=topology,
                        algorithm=algorithm,
                        link_slots=slots,
                        period_frac=frac,
                        jobs_per_second=float(np.mean([r[0] for r in rows])),
                        latency_mean_s=float(np.mean([r[1] for r in rows])),
                        latency_p95_s=float(np.mean([r[2] for r in rows])),
                        link_wait_s=float(np.mean([r[3] for r in rows])),
                        n_link_waits=float(np.mean([r[4] for r in rows])),
                        energy_per_job_j=float(np.mean([r[5] for r in rows])),
                        makespan_s=float(np.mean([r[6] for r in rows])),
                    ))
        if progress:
            progress(f"topology={topology} done")
    return result


# ---------------------------------------------------------------------------
# reporting
# ---------------------------------------------------------------------------

def format_contention_table(result: ContentionResult) -> str:
    """Render the sweep as one fixed-width table per algorithm."""
    lines = [f"== {result.title} =="]
    header = (
        f"{'link_slots':>10s} | {'period':>6s} | {'jobs/s':>8s} | "
        f"{'lat p95':>9s} | {'area wait':>9s} | {'link wait':>9s} | "
        f"{'J/job':>8s}"
    )
    for algorithm in result.algorithms():
        lines.append(f"-- {algorithm} --")
        lines.append(header)
        lines.append("-" * len(header))
        for p in result.points:
            if p.algorithm != algorithm:
                continue
            slots = "inf" if p.link_slots == 0 else str(p.link_slots)
            lines.append(
                f"{slots:>10s} | {p.period_frac:>6g} | "
                f"{p.jobs_per_second:>8.2f} | "
                f"{p.latency_p95_s * 1e3:>7.1f}ms | "
                f"{p.area_wait_s * 1e3:>7.1f}ms | "
                f"{p.link_wait_s * 1e3:>7.1f}ms | "
                f"{p.energy_per_job_j:>8.1f}"
            )
    return "\n".join(lines)


def format_topology_table(result: TopologyResult) -> str:
    """Render the topology sweep as one fixed-width table per topology."""
    lines = [f"== {result.title} =="]
    header = (
        f"{'algorithm':>14s} | {'slots':>5s} | {'period':>6s} | "
        f"{'jobs/s':>8s} | {'lat p95':>9s} | {'link wait':>9s} | "
        f"{'queued':>6s} | {'J/job':>8s}"
    )
    for topology in result.topologies():
        lines.append(f"-- {topology} --")
        lines.append(header)
        lines.append("-" * len(header))
        for p in result.points:
            if p.topology != topology:
                continue
            slots = "inf" if p.link_slots == 0 else str(p.link_slots)
            lines.append(
                f"{p.algorithm:>14s} | {slots:>5s} | {p.period_frac:>6g} | "
                f"{p.jobs_per_second:>8.2f} | "
                f"{p.latency_p95_s * 1e3:>7.1f}ms | "
                f"{p.link_wait_s * 1e3:>7.1f}ms | "
                f"{p.n_link_waits:>6.1f} | "
                f"{p.energy_per_job_j:>8.1f}"
            )
    return "\n".join(lines)


def print_report(result: ContentionResult) -> None:
    get_reporter().out(format_contention_table(result))


def write_contention_csv(
    result: ContentionResult,
    path: Optional[str] = None,
    *,
    fileobj: Optional[TextIO] = None,
) -> str:
    """Write the sweep as a long-format CSV; returns the file path."""
    if fileobj is None:
        if path is None:
            path = os.path.join(results_dir(), "contention_sweep.csv")
        handle: TextIO = open(path, "w", newline="")
        close = True
    else:
        handle = fileobj
        close = False
        path = path or "<stream>"
    try:
        writer = csv.writer(handle)
        writer.writerow([
            "algorithm", "link_slots", "period_frac", "jobs_per_second",
            "latency_mean_s", "latency_p95_s", "area_wait_s", "link_wait_s",
            "energy_per_job_j", "makespan_s",
        ])
        for p in result.points:
            writer.writerow([
                p.algorithm,
                p.link_slots,
                p.period_frac,
                f"{p.jobs_per_second:.6f}",
                f"{p.latency_mean_s:.6f}",
                f"{p.latency_p95_s:.6f}",
                f"{p.area_wait_s:.6f}",
                f"{p.link_wait_s:.6f}",
                f"{p.energy_per_job_j:.6f}",
                f"{p.makespan_s:.6f}",
            ])
    finally:
        if close:
            handle.close()
    return path


def write_topology_csv(
    result: TopologyResult,
    path: Optional[str] = None,
    *,
    fileobj: Optional[TextIO] = None,
) -> str:
    """Write the topology sweep as a long-format CSV; returns the path."""
    if fileobj is None:
        if path is None:
            path = os.path.join(results_dir(), "topology_sweep.csv")
        handle: TextIO = open(path, "w", newline="")
        close = True
    else:
        handle = fileobj
        close = False
        path = path or "<stream>"
    try:
        writer = csv.writer(handle)
        writer.writerow([
            "topology", "algorithm", "link_slots", "period_frac",
            "jobs_per_second", "latency_mean_s", "latency_p95_s",
            "link_wait_s", "n_link_waits", "energy_per_job_j", "makespan_s",
        ])
        for p in result.points:
            writer.writerow([
                p.topology,
                p.algorithm,
                p.link_slots,
                p.period_frac,
                f"{p.jobs_per_second:.6f}",
                f"{p.latency_mean_s:.6f}",
                f"{p.latency_p95_s:.6f}",
                f"{p.link_wait_s:.6f}",
                f"{p.n_link_waits:.6f}",
                f"{p.energy_per_job_j:.6f}",
                f"{p.makespan_s:.6f}",
            ])
    finally:
        if close:
            handle.close()
    return path


if __name__ == "__main__":
    parser = argparse.ArgumentParser(
        description="Shared-resource contention under arrival streams"
    )
    parser.add_argument(
        "--scale", default="smoke", choices=["smoke", "small", "paper"]
    )
    parser.add_argument("--seed", type=int, default=79)
    parser.add_argument(
        "--workers", type=int, default=None,
        help="process-pool size (default: scale config; 0 = all CPUs)",
    )
    parser.add_argument(
        "--csv", action="store_true", help="also write a CSV into ./results/"
    )
    parser.add_argument(
        "--topology", nargs="*", metavar="NAME", default=None,
        choices=list(SWEEP_TOPOLOGIES),
        help=(
            "run the interconnect-topology sweep instead of the link-slot "
            "sweep; bare --topology uses the scale's default shapes, or "
            f"name any of: {', '.join(SWEEP_TOPOLOGIES)}"
        ),
    )
    parser.add_argument(
        "--checkpoint", nargs="?", const="auto", metavar="PATH",
        help="journal completed cells (default path under results/checkpoints)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="reuse journalled cells from an interrupted --checkpoint run",
    )
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args()
    reporter = get_reporter()
    progress = (
        None if args.quiet else (lambda msg: reporter.out(f"  [{msg}]"))
    )
    if args.topology is not None:
        topo_result = run_topologies(
            scale=args.scale, topologies=args.topology or None,
            seed=args.seed, workers=args.workers,
            progress=progress, checkpoint=args.checkpoint,
            resume=args.resume,
        )
        reporter.out(format_topology_table(topo_result))
        if args.csv:
            reporter.out(f"csv written to {write_topology_csv(topo_result)}")
    else:
        result = run(
            scale=args.scale, seed=args.seed, workers=args.workers,
            progress=progress, checkpoint=args.checkpoint, resume=args.resume,
        )
        print_report(result)
        if args.csv:
            reporter.out(f"csv written to {write_contention_csv(result)}")
