"""Fig. 6 — NSGA-II quality/time tradeoff over its generation budget.

Paper setup: random SP graphs with 200 nodes (30 graphs); NSGA-II run for
50..500 generations (step 50); SNFirstFit/SPFirstFit shown as reference
lines (their result does not depend on the generation count — the same
fixed graph set is evaluated once per x for reference).

Expected shape: NSGA-II saturates around ~200 generations; even at the
saturation point it remains several times slower than the decomposition
mappers while not beating SeriesParallel.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from ..graphs.generators import random_sp_graph
from ..mappers import NsgaIIMapper, sn_first_fit, sp_first_fit
from ..parallel import resolve_workers
from ..platform import paper_platform
from ._cli import run_cli
from .config import get_scale
from .runner import SweepResult, run_sweep

__all__ = ["run"]


def run(
    scale="smoke",
    *,
    seed: int = 6,
    workers: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepResult:
    cfg = get_scale(scale)
    platform = paper_platform()

    # one fixed graph set for the whole sweep (the x axis varies the GA
    # budget, not the workload)
    rng = np.random.default_rng(np.random.SeedSequence(seed).spawn(1)[0])
    graphs = [
        random_sp_graph(cfg.fig6_n_tasks, rng) for _ in range(cfg.fig6_graphs)
    ]

    def make_graphs(x: float, rng_: np.random.Generator) -> List:
        return graphs

    def make_mappers(x: float):
        return [
            sn_first_fit(),
            sp_first_fit(),
            NsgaIIMapper(generations=int(x)),
        ]

    return run_sweep(
        "Fig6 NSGAII generations tradeoff",
        "generations",
        cfg.fig6_generations,
        make_graphs,
        make_mappers,
        platform,
        seed=seed,
        n_random_schedules=cfg.n_random_schedules,
        progress=progress,
        workers=resolve_workers(workers, cfg.parallel_workers),
    )


if __name__ == "__main__":
    run_cli("Reproduce paper Fig. 6", run, default_seed=6)
