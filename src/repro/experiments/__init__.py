"""Experiment harness: one driver per figure/table of the paper's evaluation.

Run any driver from the command line, e.g.::

    python -m repro.experiments.fig4 --scale smoke
    python -m repro.experiments.table1 --scale small --csv

Driver modules (`fig3` .. `fig7`, `table1`) are imported lazily on first
attribute access so that ``python -m repro.experiments.figN`` works without
double-import warnings.  See :mod:`repro.experiments.config` for scales.
"""

import importlib

from .config import SCALES, ScaleConfig, bench_scale, get_scale
from .metrics import AggregateStats, aggregate, positive_improvement
from .reporting import format_sweep_table, print_sweep, write_csv
from .runner import PointResult, SweepResult, SweepSeries, run_point, run_sweep

_DRIVERS = ("fig3", "fig4", "fig5", "fig6", "fig7", "table1", "ablation", "scaling", "baselines", "robustness", "contention")

__all__ = [
    *_DRIVERS,
    "SCALES",
    "ScaleConfig",
    "bench_scale",
    "get_scale",
    "AggregateStats",
    "aggregate",
    "positive_improvement",
    "format_sweep_table",
    "print_sweep",
    "write_csv",
    "PointResult",
    "SweepResult",
    "SweepSeries",
    "run_point",
    "run_sweep",
]


def __getattr__(name):
    if name in _DRIVERS:
        return importlib.import_module(f".{name}", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
