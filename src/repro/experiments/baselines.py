"""Extended baseline roster: every fast mapper in one sweep.

An extension study beyond the paper's roster: compares the decomposition
mappers against the full set of implemented list schedulers and
metaheuristics on random SP graphs.  Useful as a regression radar — if a
refactor quietly degrades one algorithm, this sweep shows it immediately.

Algorithms: HEFT, PEFT, CPOP, Lookahead-HEFT, Min-min, Max-min, tabu
search, simulated annealing, SNFirstFit, SPFirstFit.  (NSGA-II and the
MILPs are excluded here; they have dedicated figures.)

Run:  python -m repro.experiments.baselines --scale smoke
"""

from __future__ import annotations

import argparse
from typing import Callable, List, Optional

import numpy as np

from ..graphs.generators import random_sp_graph
from ..mappers import (
    CpopMapper,
    HeftMapper,
    LookaheadHeftMapper,
    MaxMinMapper,
    MinMinMapper,
    PeftMapper,
    SimulatedAnnealingMapper,
    TabuSearchMapper,
    sn_first_fit,
    sp_first_fit,
)
from ..parallel import resolve_workers
from ..platform import paper_platform
from .config import get_scale
from .runner import SweepResult, run_sweep

__all__ = ["run"]


def run(
    scale="smoke",
    *,
    seed: int = 40,
    workers: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepResult:
    cfg = get_scale(scale)
    platform = paper_platform()

    def make_graphs(x: float, rng: np.random.Generator) -> List:
        return [
            random_sp_graph(int(x), rng) for _ in range(cfg.graphs_per_point)
        ]

    def make_mappers(x: float):
        return [
            HeftMapper(),
            PeftMapper(),
            CpopMapper(),
            LookaheadHeftMapper(),
            MinMinMapper(),
            MaxMinMapper(),
            TabuSearchMapper(iterations=200),
            SimulatedAnnealingMapper(iterations=1000),
            sn_first_fit(),
            sp_first_fit(),
        ]

    return run_sweep(
        "Extended baselines",
        "n_tasks",
        cfg.fig5_sizes,
        make_graphs,
        make_mappers,
        platform,
        seed=seed,
        n_random_schedules=cfg.n_random_schedules,
        progress=progress,
        workers=resolve_workers(workers, cfg.parallel_workers),
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description="Extended baseline roster")
    parser.add_argument(
        "--scale", default="smoke", choices=["smoke", "small", "paper"]
    )
    parser.add_argument("--seed", type=int, default=40)
    parser.add_argument(
        "--workers", type=int, default=None,
        help="process-pool size (default: scale config; 0 = all CPUs)",
    )
    args = parser.parse_args()
    from .reporting import print_sweep

    print_sweep(run(scale=args.scale, seed=args.seed, workers=args.workers))
