"""Table I — workflow benchmark families (WfCommons substitute).

Paper setup: the Sukhoroslov-Gorokhovskii benchmark sets (nine families
derived from WfCommons).  For each set the table reports

- row 1: the average positive relative improvement among all graphs,
- row 2: the summed execution time over all graphs, where each graph's time
  is averaged over 10 runs with different (random) parameterizations.

Algorithms: HEFT, PEFT, NSGAII, SNFirstFit, SPFirstFit.  For the ``bwa``
and ``seismology`` sets no algorithm finds a significant acceleration
(data-bound / tiny tasks); the paper omits those rows, we keep them for
verification.
"""

from __future__ import annotations

import argparse
import csv
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..evaluation.evaluator import MappingEvaluator
from ..graphs.generators import augment_workflow, benchmark_sizes, make_workflow
from ..mappers import (
    HeftMapper,
    NsgaIIMapper,
    PeftMapper,
    sn_first_fit,
    sp_first_fit,
)
from ..obs import get_reporter
from ..parallel import (
    SupervisedPool,
    parallel_map,
    plan_from_env,
    resolve_workers,
)
from ..platform import paper_platform
from .config import get_scale
from .reporting import maybe_close, open_checkpoint, results_dir

__all__ = ["Table1Result", "run", "format_table"]


def _mappers(cfg):
    return [
        HeftMapper(),
        PeftMapper(),
        NsgaIIMapper(generations=cfg.table1_generations),
        sn_first_fit(),
        sp_first_fit(),
    ]


def _param_worker(item) -> Dict[str, tuple]:
    """One (family, size, parameterization) cell — a parallel work item.

    All randomness (graph generation, augmentation, schedule suite,
    mapper runs) derives from the :class:`~numpy.random.SeedSequence`
    carried in the item, so the pool is bit-identical to a serial loop
    for every seed-derived quantity (wall-clock ``elapsed_s`` excepted).
    """
    family, size, param_seed, cfg, platform = item
    mappers = _mappers(cfg)
    gen_rng, aug_rng, eval_rng, *mapper_rngs = [
        np.random.default_rng(s)
        for s in param_seed.spawn(3 + len(mappers))
    ]
    g = make_workflow(family, size, gen_rng)
    augment_workflow(g, aug_rng)
    evaluator = MappingEvaluator(
        g,
        platform,
        rng=eval_rng,
        n_random_schedules=cfg.n_random_schedules,
    )
    out: Dict[str, tuple] = {}
    for mapper, rng in zip(mappers, mapper_rngs):
        res = mapper.map(evaluator, rng=rng)
        out[mapper.name] = (
            evaluator.relative_improvement(res.mapping), res.elapsed_s
        )
    return out


@dataclass
class Table1Result:
    """Per-family improvement means and summed execution times."""

    algorithms: List[str]
    improvement: Dict[str, Dict[str, float]] = field(default_factory=dict)
    total_time_s: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def families(self) -> List[str]:
        return list(self.improvement)


def run(
    scale="smoke",
    *,
    seed: int = 10,
    families: Optional[List[str]] = None,
    workers: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    checkpoint=None,
    resume: bool = False,
) -> Table1Result:
    """Reproduce Table I; ``checkpoint``/``resume`` journal completed
    cells so an interrupted run restarts where it left off (see
    :func:`repro.experiments.reporting.open_checkpoint`)."""
    cfg = get_scale(scale)
    workers = resolve_workers(workers, cfg.parallel_workers)
    platform = paper_platform()
    sizes = benchmark_sizes(cfg.table1_sizes_key)
    if families is not None:
        sizes = {f: sizes[f] for f in families}

    names = [m.name for m in _mappers(cfg)]
    result = Table1Result(algorithms=names)

    # enumerate every (family, size, parameterization) cell with its seed
    # in the fixed serial order, then fan out (seed-sharding contract)
    root = np.random.SeedSequence(seed)
    items = []
    for family, family_seed in zip(sorted(sizes), root.spawn(len(sizes))):
        for size, size_seed in zip(
            sizes[family], family_seed.spawn(len(sizes[family]))
        ):
            for param_seed in size_seed.spawn(cfg.table1_parameterizations):
                items.append((family, size, param_seed, cfg, platform))
    journal = open_checkpoint("table1", cfg.name, seed, checkpoint, resume)
    with SupervisedPool(workers, chaos=plan_from_env()) as executor, \
            maybe_close(journal):
        cells = parallel_map(
            _param_worker, items, workers=workers,
            progress=progress, label="table1 cell", executor=executor,
            journal=journal,
        )

    it = iter(cells)
    for family in sorted(sizes):
        imps: Dict[str, List[float]] = {n: [] for n in names}
        per_graph_time: Dict[str, List[float]] = {n: [] for n in names}
        for size in sizes[family]:
            times_this_graph: Dict[str, List[float]] = {n: [] for n in names}
            for _ in range(cfg.table1_parameterizations):
                for name, (imp, elapsed) in next(it).items():
                    imps[name].append(imp)
                    times_this_graph[name].append(elapsed)
            for name, times in times_this_graph.items():
                per_graph_time[name].append(float(np.mean(times)))
            if progress is not None:
                progress(f"table1: {family} size={size} done")
        result.improvement[family] = {
            k: float(np.mean(v)) for k, v in imps.items()
        }
        result.total_time_s[family] = {
            k: float(np.sum(v)) for k, v in per_graph_time.items()
        }
    return result


def format_table(result: Table1Result) -> str:
    """Paper-style table: improvement row + total-time row per family."""
    algos = result.algorithms
    widths = [max(len(a), 10) for a in algos]
    head = f"{'set':>14s} | " + " | ".join(
        f"{a:>{w}s}" for a, w in zip(algos, widths)
    )
    lines = ["== Table I workflow benchmark sets ==", head, "-" * len(head)]
    for family in result.families():
        imp = result.improvement[family]
        tot = result.total_time_s[family]
        lines.append(
            f"{family:>14s} | "
            + " | ".join(f"{imp[a] * 100:>{w - 2}.0f} %" for a, w in zip(algos, widths))
        )
        lines.append(
            f"{'':>14s} | "
            + " | ".join(_fmt_time(tot[a], w) for a, w in zip(algos, widths))
        )
    return "\n".join(lines)


def _fmt_time(seconds: float, width: int) -> str:
    if seconds >= 1.0:
        return f"{seconds:>{width - 2}.1f} s"
    return f"{seconds * 1e3:>{width - 3}.0f} ms"


def write_csv(result: Table1Result, path: Optional[str] = None) -> str:
    if path is None:
        path = os.path.join(results_dir(), "table1.csv")
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["family", "algorithm", "improvement", "total_time_s"])
        for family in result.families():
            for a in result.algorithms:
                writer.writerow(
                    [
                        family,
                        a,
                        f"{result.improvement[family][a]:.6f}",
                        f"{result.total_time_s[family][a]:.6f}",
                    ]
                )
    return path


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description="Reproduce paper Table I")
    parser.add_argument(
        "--scale", default="smoke", choices=["smoke", "small", "paper"]
    )
    parser.add_argument("--seed", type=int, default=10)
    parser.add_argument("--families", nargs="*", default=None)
    parser.add_argument(
        "--workers", type=int, default=None,
        help="process-pool size (default: scale config; 0 = all CPUs)",
    )
    parser.add_argument("--csv", action="store_true")
    parser.add_argument(
        "--checkpoint", nargs="?", const="auto", metavar="PATH",
        help="journal completed cells (default path under results/checkpoints)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="reuse journalled cells from an interrupted --checkpoint run",
    )
    args = parser.parse_args()
    reporter = get_reporter()
    table = run(
        scale=args.scale,
        seed=args.seed,
        families=args.families,
        workers=args.workers,
        progress=lambda msg: reporter.out(f"  [{msg}]"),
        checkpoint=args.checkpoint,
        resume=args.resume,
    )
    reporter.out(format_table(table))
    if args.csv:
        reporter.out(f"csv written to {write_csv(table)}")
