"""Robustness experiment: rank mappers by makespan degradation under noise.

An extension study beyond the paper's model-based evaluation: every mapper
optimizes the *analytic* makespan, but a mapping that wins under the model
can lose badly once task runtimes jitter.  This driver maps each graph with
the decomposition mappers and the HEFT/PEFT/NSGA-II roster, replays every
mapping through the runtime engine (:mod:`repro.runtime`) under increasing
lognormal runtime noise, and reports per noise level how much each
algorithm's promised makespan erodes:

- **degradation** — expected simulated makespan / analytic makespan − 1,
- **p95 degradation** — the tail a latency SLO would care about.

A *low* degradation at equal improvement means the mapping's win is real,
not an artifact of the model's determinism.

Run:  python -m repro.experiments.robustness --scale smoke --csv
"""

from __future__ import annotations

import argparse
import csv
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, TextIO

import numpy as np

from ..evaluation import MappingEvaluator
from ..graphs.generators import random_sp_graph
from ..mappers import (
    HeftMapper,
    NsgaIIMapper,
    PeftMapper,
    sn_first_fit,
    sp_first_fit,
)
from ..platform import paper_platform
from ..runtime import LognormalNoise, replicate, robustness_report
from .config import get_scale
from .reporting import results_dir

__all__ = [
    "RobustnessPoint",
    "RobustnessResult",
    "run",
    "format_robustness_table",
    "print_report",
    "write_robustness_csv",
]


@dataclass(frozen=True)
class RobustnessPoint:
    """One (noise level, algorithm) cell, aggregated over graphs."""

    sigma: float
    algorithm: str
    analytic_s: float          # mean analytic makespan across graphs (s)
    mean_s: float              # mean simulated makespan across graphs (s)
    degradation: float         # mean of per-graph (mean/analytic - 1)
    p95_degradation: float     # mean of per-graph (p95/analytic - 1)


@dataclass
class RobustnessResult:
    """A full robustness sweep: noise levels x algorithms."""

    title: str
    points: List[RobustnessPoint] = field(default_factory=list)

    def algorithms(self) -> List[str]:
        seen: Dict[str, None] = {}
        for p in self.points:
            seen.setdefault(p.algorithm)
        return list(seen)

    def sigmas(self) -> List[float]:
        return sorted({p.sigma for p in self.points})

    def cell(self, sigma: float, algorithm: str) -> RobustnessPoint:
        for p in self.points:
            if p.sigma == sigma and p.algorithm == algorithm:
                return p
        raise KeyError((sigma, algorithm))


def _roster(cfg):
    return [
        HeftMapper(),
        PeftMapper(),
        NsgaIIMapper(generations=cfg.nsga_generations),
        sn_first_fit(),
        sp_first_fit(),
    ]


def run(
    scale="smoke",
    *,
    seed: int = 77,
    progress: Optional[Callable[[str], None]] = None,
) -> RobustnessResult:
    """Sweep noise levels; returns mean/p95 degradation per algorithm."""
    cfg = get_scale(scale)
    platform = paper_platform()
    root = np.random.SeedSequence(seed)
    graph_seed, map_seed, sim_seed = root.spawn(3)

    graphs = [
        random_sp_graph(cfg.robustness_n_tasks, np.random.default_rng(s))
        for s in graph_seed.spawn(cfg.robustness_graphs)
    ]

    # map once per (graph, algorithm); the noise sweep reuses the mappings
    map_rng = np.random.default_rng(map_seed)
    mappings: List[Dict[str, List[int]]] = []
    analytics: List[Dict[str, float]] = []
    for k, graph in enumerate(graphs):
        ev = MappingEvaluator(
            graph, platform, rng=np.random.default_rng(seed),
            n_random_schedules=cfg.n_random_schedules,
        )
        per_alg: Dict[str, List[int]] = {}
        per_analytic: Dict[str, float] = {}
        for mapper in _roster(cfg):
            mapping = list(mapper.map(ev, rng=map_rng).mapping)
            per_alg[mapper.name] = mapping
            per_analytic[mapper.name] = ev.model.simulate(mapping)
        mappings.append(per_alg)
        analytics.append(per_analytic)
        if progress:
            progress(f"mapped graph {k + 1}/{len(graphs)}")

    result = RobustnessResult(
        title=f"Robustness under lognormal runtime noise ({cfg.name})"
    )
    sim_children = iter(sim_seed.spawn(
        len(cfg.robustness_noise_levels) * len(graphs) * len(mappings[0])
    ))
    for sigma in cfg.robustness_noise_levels:
        noise = LognormalNoise(sigma)
        for algorithm in mappings[0]:
            degs, p95s, means, bases = [], [], [], []
            for graph, per_alg, per_analytic in zip(graphs, mappings, analytics):
                report = robustness_report(
                    replicate(
                        graph, platform, per_alg[algorithm],
                        n=cfg.robustness_replications, noise=noise,
                        seed=next(sim_children),
                    ),
                    per_analytic[algorithm],
                )
                degs.append(report.degradation)
                p95s.append(report.p95_degradation)
                means.append(report.mean)
                bases.append(report.analytic)
            result.points.append(RobustnessPoint(
                sigma=sigma,
                algorithm=algorithm,
                analytic_s=float(np.mean(bases)),
                mean_s=float(np.mean(means)),
                degradation=float(np.mean(degs)),
                p95_degradation=float(np.mean(p95s)),
            ))
        if progress:
            progress(f"sigma={sigma:g} done")
    return result


def format_robustness_table(result: RobustnessResult) -> str:
    """Render the sweep as fixed-width text tables, one per metric."""
    algorithms = result.algorithms()
    widths = [max(len(a), 10) for a in algorithms]
    lines = [f"== {result.title} =="]

    def table(header: str, getter) -> None:
        lines.append(f"-- {header} --")
        head = f"{'noise_sigma':>12s} | " + " | ".join(
            f"{a:>{w}s}" for a, w in zip(algorithms, widths)
        )
        lines.append(head)
        lines.append("-" * len(head))
        for sigma in result.sigmas():
            cells = [
                f"{getter(result.cell(sigma, a)):>{w}.3f}"
                for a, w in zip(algorithms, widths)
            ]
            lines.append(f"{sigma:>12g} | " + " | ".join(cells))

    table("mean degradation (mean/analytic - 1)", lambda p: p.degradation)
    table("p95 degradation (p95/analytic - 1)", lambda p: p.p95_degradation)
    return "\n".join(lines)


def print_report(result: RobustnessResult) -> None:
    print(format_robustness_table(result))


def write_robustness_csv(
    result: RobustnessResult,
    path: Optional[str] = None,
    *,
    fileobj: Optional[TextIO] = None,
) -> str:
    """Write the sweep as a long-format CSV; returns the file path."""
    if fileobj is None:
        if path is None:
            path = os.path.join(results_dir(), "robustness_noise_sweep.csv")
        handle: TextIO = open(path, "w", newline="")
        close = True
    else:
        handle = fileobj
        close = False
        path = path or "<stream>"
    try:
        writer = csv.writer(handle)
        writer.writerow([
            "noise_sigma", "algorithm", "analytic_s", "mean_s",
            "degradation", "p95_degradation",
        ])
        for p in result.points:
            writer.writerow([
                p.sigma,
                p.algorithm,
                f"{p.analytic_s:.6f}",
                f"{p.mean_s:.6f}",
                f"{p.degradation:.6f}",
                f"{p.p95_degradation:.6f}",
            ])
    finally:
        if close:
            handle.close()
    return path


if __name__ == "__main__":
    parser = argparse.ArgumentParser(
        description="Mapper robustness under runtime noise"
    )
    parser.add_argument(
        "--scale", default="smoke", choices=["smoke", "small", "paper"]
    )
    parser.add_argument("--seed", type=int, default=77)
    parser.add_argument(
        "--csv", action="store_true", help="also write a CSV into ./results/"
    )
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args()
    progress = None if args.quiet else (lambda msg: print(f"  [{msg}]"))
    result = run(scale=args.scale, seed=args.seed, progress=progress)
    print_report(result)
    if args.csv:
        print(f"csv written to {write_robustness_csv(result)}")
