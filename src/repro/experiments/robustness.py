"""Robustness experiments: noise degradation and failure re-mapping policies.

An extension study beyond the paper's model-based evaluation: every mapper
optimizes the *analytic* makespan, but a mapping that wins under the model
can lose badly once task runtimes jitter — or once a device drops out.
Two studies share one harness:

**Noise sweep** (:func:`run`) — maps each graph with the decomposition
mappers and the HEFT/PEFT/NSGA-II roster, replays every mapping through
the runtime engine (:mod:`repro.runtime`) under increasing lognormal
runtime noise, and reports per noise level how much each algorithm's
promised makespan erodes:

- **degradation** — expected simulated makespan / analytic makespan − 1,
- **p95 degradation** — the tail a latency SLO would care about.

Simulation seeds are derived *once* per (graph, algorithm) and reused at
every noise level, so the degradation curves are paired: moving along the
sigma axis changes only the noise magnitude, never the underlying draws.

**Replan sweep** (:func:`run_replan`) — the policy axis: a device fails
mid-run and the engine rescues stranded work either with the fixed
fallback or by re-running a mapper (decomposition / HEFT / min-min) on
the surviving platform (:mod:`repro.runtime.replan`).  Failure times and
noise draws are paired across policies, so the comparison isolates the
policy effect.

Both drivers fan their per-(configuration, replication) work out through
:mod:`repro.parallel`; ``--workers N`` results are bit-identical to
serial runs.

Run:  python -m repro.experiments.robustness --scale smoke --csv
      python -m repro.experiments.robustness --study replan --workers 4
"""

from __future__ import annotations

import argparse
import csv
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, TextIO, Tuple

import numpy as np

from ..evaluation import MappingEvaluator
from ..graphs.generators import random_sp_graph
from ..mappers import (
    HeftMapper,
    NsgaIIMapper,
    PeftMapper,
    sn_first_fit,
    sp_first_fit,
)
from ..parallel import (
    SupervisedPool,
    parallel_map,
    plan_from_env,
    resolve_workers,
)
from ..platform import paper_platform
from ..runtime import (
    DeviceFailure,
    LognormalNoise,
    NoNoise,
    replicate,
    robustness_report,
)
from ..obs import get_reporter
from .config import get_scale
from .reporting import maybe_close, open_checkpoint, results_dir

__all__ = [
    "RobustnessPoint",
    "RobustnessResult",
    "ReplanPoint",
    "ReplanResult",
    "run",
    "run_replan",
    "format_robustness_table",
    "format_replan_table",
    "print_report",
    "write_robustness_csv",
    "write_replan_csv",
]


@dataclass(frozen=True)
class RobustnessPoint:
    """One (noise level, algorithm) cell, aggregated over graphs."""

    sigma: float
    algorithm: str
    analytic_s: float          # mean analytic makespan across graphs (s)
    mean_s: float              # mean simulated makespan across graphs (s)
    degradation: float         # mean of per-graph (mean/analytic - 1)
    p95_degradation: float     # mean of per-graph (p95/analytic - 1)


@dataclass
class RobustnessResult:
    """A full robustness sweep: noise levels x algorithms."""

    title: str
    points: List[RobustnessPoint] = field(default_factory=list)

    def algorithms(self) -> List[str]:
        seen: Dict[str, None] = {}
        for p in self.points:
            seen.setdefault(p.algorithm)
        return list(seen)

    def sigmas(self) -> List[float]:
        return sorted({p.sigma for p in self.points})

    def cell(self, sigma: float, algorithm: str) -> RobustnessPoint:
        for p in self.points:
            if p.sigma == sigma and p.algorithm == algorithm:
                return p
        raise KeyError((sigma, algorithm))


@dataclass(frozen=True)
class ReplanPoint:
    """One (replan policy, algorithm) cell, aggregated over graphs."""

    policy: str
    algorithm: str
    analytic_s: float          # mean no-failure analytic makespan (s)
    mean_s: float              # mean simulated makespan under failure (s)
    degradation: float         # mean of per-graph (mean/analytic - 1)
    p95_degradation: float
    mean_killed: float         # task executions lost per run
    mean_remapped: float       # tasks moved per run


@dataclass
class ReplanResult:
    """A replan-policy sweep: policies x algorithms under device failure."""

    title: str
    points: List[ReplanPoint] = field(default_factory=list)

    def algorithms(self) -> List[str]:
        seen: Dict[str, None] = {}
        for p in self.points:
            seen.setdefault(p.algorithm)
        return list(seen)

    def policies(self) -> List[str]:
        seen: Dict[str, None] = {}
        for p in self.points:
            seen.setdefault(p.policy)
        return list(seen)

    def cell(self, policy: str, algorithm: str) -> ReplanPoint:
        for p in self.points:
            if p.policy == policy and p.algorithm == algorithm:
                return p
        raise KeyError((policy, algorithm))


def _roster(cfg):
    return [
        HeftMapper(),
        PeftMapper(),
        NsgaIIMapper(generations=cfg.nsga_generations),
        sn_first_fit(),
        sp_first_fit(),
    ]


# ---------------------------------------------------------------------------
# parallel work items (module-level: the pool pickles workers by reference)
# ---------------------------------------------------------------------------

def _map_graph_worker(item) -> Tuple[Dict[str, List[int]], Dict[str, float]]:
    """Map one graph with the full roster; returns (mappings, analytics)."""
    graph, platform, cfg, map_child = item
    mappers = _roster(cfg)
    eval_rng, *mapper_rngs = [
        np.random.default_rng(s) for s in map_child.spawn(1 + len(mappers))
    ]
    evaluator = MappingEvaluator(
        graph, platform, rng=eval_rng,
        n_random_schedules=cfg.n_random_schedules,
    )
    mappings: Dict[str, List[int]] = {}
    analytics: Dict[str, float] = {}
    for mapper, rng in zip(mappers, mapper_rngs):
        mapping = list(mapper.map(evaluator, rng=rng).mapping)
        mappings[mapper.name] = mapping
        analytics[mapper.name] = evaluator.model.simulate(mapping)
    return mappings, analytics


def _map_phase(graphs, platform, cfg, map_seed, workers, progress,
               executor=None, journal=None):
    """Map every graph once; the sweeps reuse the mappings."""
    items = [
        (g, platform, cfg, child)
        for g, child in zip(graphs, map_seed.spawn(len(graphs)))
    ]
    out = parallel_map(
        _map_graph_worker, items, workers=workers,
        progress=progress, label="mapped graph", executor=executor,
        journal=journal,
    )
    return [m for m, _ in out], [a for _, a in out]


def _sweep_pool(workers):
    """One supervised pool shared by a driver's map and simulate phases.

    Retries transient failures, times out hung workers, and rebuilds the
    executor after crashes; results are unaffected because every item
    carries its own seeds (seed-sharding contract).
    """
    return SupervisedPool(workers, chaos=plan_from_env())


def _noise_cell_worker(item) -> Tuple[float, float, float, float]:
    """One (sigma, algorithm, graph) replication batch."""
    graph, platform, mapping, analytic, sigma, n, sim_child = item
    report = robustness_report(
        replicate(
            graph, platform, mapping,
            n=n, noise=LognormalNoise(sigma), seed=sim_child,
        ),
        analytic,
    )
    return report.degradation, report.p95_degradation, report.mean, report.analytic


def _replan_cell_worker(item):
    """One (policy, algorithm, graph) replication batch under failure."""
    (graph, platform, mapping, analytic, sigma, n, sim_child,
     frac, device, policy) = item
    noise = LognormalNoise(sigma) if sigma > 0 else NoNoise()
    traces = replicate(
        graph, platform, mapping,
        n=n, noise=noise,
        scenarios=[DeviceFailure(frac * analytic, device=device)],
        seed=sim_child, replan_policy=policy,
    )
    report = robustness_report(traces, analytic)
    killed = float(np.mean([t.n_killed for t in traces]))
    remapped = float(np.mean(
        [sum(j.n_remapped for j in t.jobs) for t in traces]
    ))
    return (report.degradation, report.p95_degradation, report.mean,
            killed, remapped)


# ---------------------------------------------------------------------------
# drivers
# ---------------------------------------------------------------------------

def run(
    scale="smoke",
    *,
    seed: int = 77,
    workers: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    checkpoint=None,
    resume: bool = False,
) -> RobustnessResult:
    """Sweep noise levels; returns mean/p95 degradation per algorithm.

    Per-replication simulation seeds are derived once per (graph,
    algorithm) from ``sim_seed`` and reused at every sigma, so curves
    along the noise axis are paired — seed variance never masquerades as
    a noise effect.

    ``checkpoint``/``resume`` journal completed cells (see
    :func:`repro.experiments.reporting.open_checkpoint`): a resumed run
    recomputes only outstanding cells and emits a byte-identical CSV.
    """
    cfg = get_scale(scale)
    workers = resolve_workers(workers, cfg.parallel_workers)
    platform = paper_platform()
    root = np.random.SeedSequence(seed)
    graph_seed, map_seed, sim_seed = root.spawn(3)

    graphs = [
        random_sp_graph(cfg.robustness_n_tasks, np.random.default_rng(s))
        for s in graph_seed.spawn(cfg.robustness_graphs)
    ]

    journal = open_checkpoint("robustness", cfg.name, seed, checkpoint, resume)
    with _sweep_pool(workers) as executor, maybe_close(journal):
        # map once per (graph, algorithm); the sweep reuses the mappings
        mappings, analytics = _map_phase(
            graphs, platform, cfg, map_seed, workers, progress, executor,
            journal,
        )
        algorithms = list(mappings[0])

        # one simulation seed per (graph, algorithm), shared by every sigma
        sim_children = sim_seed.spawn(len(graphs) * len(algorithms))
        items = []
        for sigma in cfg.robustness_noise_levels:
            for a, algorithm in enumerate(algorithms):
                for k, graph in enumerate(graphs):
                    items.append((
                        graph, platform,
                        mappings[k][algorithm], analytics[k][algorithm],
                        sigma, cfg.robustness_replications,
                        sim_children[k * len(algorithms) + a],
                    ))
        cells = parallel_map(
            _noise_cell_worker, items, workers=workers,
            progress=progress, label="noise cell", executor=executor,
            journal=journal,
        )

    result = RobustnessResult(
        title=f"Robustness under lognormal runtime noise ({cfg.name})"
    )
    it = iter(cells)
    for sigma in cfg.robustness_noise_levels:
        for algorithm in algorithms:
            rows = [next(it) for _ in graphs]
            result.points.append(RobustnessPoint(
                sigma=sigma,
                algorithm=algorithm,
                analytic_s=float(np.mean([r[3] for r in rows])),
                mean_s=float(np.mean([r[2] for r in rows])),
                degradation=float(np.mean([r[0] for r in rows])),
                p95_degradation=float(np.mean([r[1] for r in rows])),
            ))
        if progress:
            progress(f"sigma={sigma:g} done")
    return result


def run_replan(
    scale="smoke",
    *,
    seed: int = 78,
    workers: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    checkpoint=None,
    resume: bool = False,
) -> ReplanResult:
    """Sweep re-mapping policies under a mid-run device failure.

    A device (``cfg.replan_device``) fails at
    ``cfg.replan_failure_frac`` of each mapping's analytic makespan;
    every policy replays the *same* seeds, failure instants and noise
    draws, so differences are pure policy effect.
    ``checkpoint``/``resume`` journal completed cells exactly as in
    :func:`run`.
    """
    cfg = get_scale(scale)
    workers = resolve_workers(workers, cfg.parallel_workers)
    platform = paper_platform()
    if not 0 <= cfg.replan_device < platform.n_devices:
        raise ValueError(
            f"replan_device {cfg.replan_device} out of range for "
            f"{platform.n_devices}-device platform"
        )
    root = np.random.SeedSequence(seed)
    graph_seed, map_seed, sim_seed = root.spawn(3)

    graphs = [
        random_sp_graph(cfg.robustness_n_tasks, np.random.default_rng(s))
        for s in graph_seed.spawn(cfg.robustness_graphs)
    ]
    journal = open_checkpoint("replan", cfg.name, seed, checkpoint, resume)
    with _sweep_pool(workers) as executor, maybe_close(journal):
        mappings, analytics = _map_phase(
            graphs, platform, cfg, map_seed, workers, progress, executor,
            journal,
        )
        algorithms = list(mappings[0])

        # one seed per (graph, algorithm), shared by every policy (paired)
        sim_children = sim_seed.spawn(len(graphs) * len(algorithms))
        items = []
        for policy in cfg.replan_policies:
            for a, algorithm in enumerate(algorithms):
                for k, graph in enumerate(graphs):
                    items.append((
                        graph, platform,
                        mappings[k][algorithm], analytics[k][algorithm],
                        cfg.replan_sigma, cfg.robustness_replications,
                        sim_children[k * len(algorithms) + a],
                        cfg.replan_failure_frac, cfg.replan_device, policy,
                    ))
        cells = parallel_map(
            _replan_cell_worker, items, workers=workers,
            progress=progress, label="replan cell", executor=executor,
            journal=journal,
        )

    result = ReplanResult(
        title=(
            f"Re-mapping policies under device-{cfg.replan_device} failure "
            f"at {cfg.replan_failure_frac:g}x makespan ({cfg.name})"
        )
    )
    it = iter(cells)
    for policy in cfg.replan_policies:
        for algorithm in algorithms:
            rows = [next(it) for _ in graphs]
            result.points.append(ReplanPoint(
                policy=policy,
                algorithm=algorithm,
                analytic_s=float(np.mean([analytics[k][algorithm]
                                          for k in range(len(graphs))])),
                mean_s=float(np.mean([r[2] for r in rows])),
                degradation=float(np.mean([r[0] for r in rows])),
                p95_degradation=float(np.mean([r[1] for r in rows])),
                mean_killed=float(np.mean([r[3] for r in rows])),
                mean_remapped=float(np.mean([r[4] for r in rows])),
            ))
        if progress:
            progress(f"policy={policy} done")
    return result


# ---------------------------------------------------------------------------
# reporting
# ---------------------------------------------------------------------------

def format_robustness_table(result: RobustnessResult) -> str:
    """Render the sweep as fixed-width text tables, one per metric."""
    algorithms = result.algorithms()
    widths = [max(len(a), 10) for a in algorithms]
    lines = [f"== {result.title} =="]

    def table(header: str, getter) -> None:
        lines.append(f"-- {header} --")
        head = f"{'noise_sigma':>12s} | " + " | ".join(
            f"{a:>{w}s}" for a, w in zip(algorithms, widths)
        )
        lines.append(head)
        lines.append("-" * len(head))
        for sigma in result.sigmas():
            cells = [
                f"{getter(result.cell(sigma, a)):>{w}.3f}"
                for a, w in zip(algorithms, widths)
            ]
            lines.append(f"{sigma:>12g} | " + " | ".join(cells))

    table("mean degradation (mean/analytic - 1)", lambda p: p.degradation)
    table("p95 degradation (p95/analytic - 1)", lambda p: p.p95_degradation)
    return "\n".join(lines)


def format_replan_table(result: ReplanResult) -> str:
    """Render the policy sweep as fixed-width text tables."""
    algorithms = result.algorithms()
    widths = [max(len(a), 10) for a in algorithms]
    lines = [f"== {result.title} =="]

    def table(header: str, getter) -> None:
        lines.append(f"-- {header} --")
        head = f"{'policy':>14s} | " + " | ".join(
            f"{a:>{w}s}" for a, w in zip(algorithms, widths)
        )
        lines.append(head)
        lines.append("-" * len(head))
        for policy in result.policies():
            cells = [
                f"{getter(result.cell(policy, a)):>{w}.3f}"
                for a, w in zip(algorithms, widths)
            ]
            lines.append(f"{policy:>14s} | " + " | ".join(cells))

    table("mean degradation (mean/analytic - 1)", lambda p: p.degradation)
    table("p95 degradation (p95/analytic - 1)", lambda p: p.p95_degradation)
    table("tasks remapped per run", lambda p: p.mean_remapped)
    return "\n".join(lines)


def print_report(result) -> None:
    reporter = get_reporter()
    if isinstance(result, ReplanResult):
        reporter.out(format_replan_table(result))
    else:
        reporter.out(format_robustness_table(result))


def write_robustness_csv(
    result: RobustnessResult,
    path: Optional[str] = None,
    *,
    fileobj: Optional[TextIO] = None,
) -> str:
    """Write the sweep as a long-format CSV; returns the file path."""
    if fileobj is None:
        if path is None:
            path = os.path.join(results_dir(), "robustness_noise_sweep.csv")
        handle: TextIO = open(path, "w", newline="")
        close = True
    else:
        handle = fileobj
        close = False
        path = path or "<stream>"
    try:
        writer = csv.writer(handle)
        writer.writerow([
            "noise_sigma", "algorithm", "analytic_s", "mean_s",
            "degradation", "p95_degradation",
        ])
        for p in result.points:
            writer.writerow([
                p.sigma,
                p.algorithm,
                f"{p.analytic_s:.6f}",
                f"{p.mean_s:.6f}",
                f"{p.degradation:.6f}",
                f"{p.p95_degradation:.6f}",
            ])
    finally:
        if close:
            handle.close()
    return path


def write_replan_csv(
    result: ReplanResult,
    path: Optional[str] = None,
    *,
    fileobj: Optional[TextIO] = None,
) -> str:
    """Write the policy sweep as a long-format CSV; returns the file path."""
    if fileobj is None:
        if path is None:
            path = os.path.join(results_dir(), "replan_policy_sweep.csv")
        handle: TextIO = open(path, "w", newline="")
        close = True
    else:
        handle = fileobj
        close = False
        path = path or "<stream>"
    try:
        writer = csv.writer(handle)
        writer.writerow([
            "policy", "algorithm", "analytic_s", "mean_s",
            "degradation", "p95_degradation", "mean_killed", "mean_remapped",
        ])
        for p in result.points:
            writer.writerow([
                p.policy,
                p.algorithm,
                f"{p.analytic_s:.6f}",
                f"{p.mean_s:.6f}",
                f"{p.degradation:.6f}",
                f"{p.p95_degradation:.6f}",
                f"{p.mean_killed:.6f}",
                f"{p.mean_remapped:.6f}",
            ])
    finally:
        if close:
            handle.close()
    return path


if __name__ == "__main__":
    parser = argparse.ArgumentParser(
        description="Mapper robustness under runtime noise / device failure"
    )
    parser.add_argument(
        "--scale", default="smoke", choices=["smoke", "small", "paper"]
    )
    parser.add_argument(
        "--study", default="noise", choices=["noise", "replan"],
        help="noise degradation sweep or failure re-mapping policy sweep",
    )
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--workers", type=int, default=None,
        help="process-pool size (default: scale config; 0 = all CPUs)",
    )
    parser.add_argument(
        "--csv", action="store_true", help="also write a CSV into ./results/"
    )
    parser.add_argument(
        "--checkpoint", nargs="?", const="auto", metavar="PATH",
        help="journal completed cells (default path under results/checkpoints)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="reuse journalled cells from an interrupted --checkpoint run",
    )
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args()
    reporter = get_reporter()
    progress = (
        None if args.quiet else (lambda msg: reporter.out(f"  [{msg}]"))
    )
    if args.study == "replan":
        seed = 78 if args.seed is None else args.seed
        replan = run_replan(
            scale=args.scale, seed=seed, workers=args.workers,
            progress=progress, checkpoint=args.checkpoint, resume=args.resume,
        )
        print_report(replan)
        if args.csv:
            reporter.out(f"csv written to {write_replan_csv(replan)}")
    else:
        seed = 77 if args.seed is None else args.seed
        result = run(
            scale=args.scale, seed=seed, workers=args.workers,
            progress=progress, checkpoint=args.checkpoint, resume=args.resume,
        )
        print_report(result)
        if args.csv:
            reporter.out(f"csv written to {write_robustness_csv(result)}")
