"""Experiment scales.

Every figure driver runs at one of three scales:

``smoke``
    Minutes-level defaults used by the test-suite and ``pytest benchmarks/``:
    fewer/smaller graphs, fewer random schedules, short MILP time limits,
    fewer GA generations.
``small``
    A denser sweep that already shows every paper trend clearly.
``paper``
    The published experiment dimensions (30 graphs per point, 100 random
    schedules, 5..200 tasks, 500 generations, 5-minute ZhouLiu limit).
    Expect hours of runtime in pure Python.

Select via the ``scale`` argument of each driver, the ``--scale`` CLI flag,
or the ``REPRO_BENCH_SCALE`` environment variable for the benchmark suite.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["ScaleConfig", "SCALES", "get_scale", "bench_scale"]


@dataclass(frozen=True)
class ScaleConfig:
    name: str
    #: graphs per sweep point ("average over 30 ... graphs", Sec. IV-A)
    graphs_per_point: int
    #: random schedules in the evaluation suite (paper: 100)
    n_random_schedules: int

    # Fig. 3 — decomposition vs MILPs on random SP graphs
    fig3_sizes: List[int]
    fig3_zhouliu_max: int           # ZhouLiu only below this size (timeouts)
    zhouliu_time_limit_s: float
    milp_time_limit_s: float

    # Fig. 4 — decomposition vs HEFT/PEFT
    fig4_sizes: List[int]

    # Fig. 5 — decomposition (FirstFit) vs NSGA-II
    fig5_sizes: List[int]
    nsga_generations: int

    # Fig. 6 — NSGA-II generations sweep at fixed size
    fig6_generations: List[int]
    fig6_n_tasks: int
    fig6_graphs: int

    # Fig. 7 — almost-SP graphs with additional edges
    fig7_n_tasks: int
    fig7_extra_edges: List[int]

    # Table I — workflow families
    table1_sizes_key: str           # key into workflows.benchmark_sizes
    table1_parameterizations: int   # random augmentations per graph (paper: 10)
    table1_generations: int

    # Robustness — runtime-engine noise sweep (repro.experiments.robustness)
    robustness_noise_levels: List[float] = field(
        default_factory=lambda: [0.1, 0.3]
    )
    robustness_replications: int = 8
    robustness_n_tasks: int = 30
    robustness_graphs: int = 2

    #: default process-pool size for every experiment driver
    #: (override per run with ``--workers N``; 0 = one worker per CPU)
    parallel_workers: int = 1

    # Replan — online re-mapping policy sweep under device failure
    #: policies compared by the replan axis of the robustness study
    replan_policies: List[str] = field(
        default_factory=lambda: ["fallback", "decomposition", "heft", "minmin"]
    )
    #: failure instant as a fraction of the mapping's analytic makespan
    #: (early enough that the failure strands not-yet-started work — at
    #: smoke scale a late failure leaves nothing to rescue and the
    #: policy comparison degenerates)
    replan_failure_frac: float = 0.1
    #: device that fails mid-run (1 = the GPU on the paper platform)
    replan_device: int = 1
    #: lognormal runtime noise applied during the replan sweep
    replan_sigma: float = 0.1

    # Contention — shared-resource sweep (repro.experiments.contention):
    # arrival streams under cross-job FPGA area accounting + link slots
    contention_n_tasks: int = 30
    contention_graphs: int = 2
    #: jobs per arrival stream
    contention_jobs: int = 6
    #: link-slot settings swept (0 = unlimited, the analytic link model)
    contention_link_slots: List[int] = field(
        default_factory=lambda: [0, 2, 1]
    )
    #: arrival period as a fraction of the mapping's analytic makespan
    #: (1.0 = back-to-back, smaller = overlapping jobs)
    contention_period_fracs: List[float] = field(
        default_factory=lambda: [1.0, 0.5, 0.25]
    )
    #: FPGA capacity headroom over one job's footprint: the run platform's
    #: area budget is ``headroom x usage(mapping)`` (when the mapping uses
    #: the FPGA at all), so overlapping jobs genuinely contend for fabric
    contention_area_headroom: float = 1.5
    #: interconnect shapes swept by ``--topology`` (and ``run_topologies``):
    #: ``"shared"`` is the legacy single-pool model, the rest are
    #: :data:`repro.platform.topologies.TOPOLOGY_NAMES` presets with the
    #: swept slot width applied per link
    contention_topologies: List[str] = field(
        default_factory=lambda: ["shared", "star", "mesh"]
    )


SCALES: Dict[str, ScaleConfig] = {
    "smoke": ScaleConfig(
        name="smoke",
        graphs_per_point=3,
        n_random_schedules=20,
        fig3_sizes=[6, 10, 14],
        fig3_zhouliu_max=10,
        zhouliu_time_limit_s=15.0,
        milp_time_limit_s=10.0,
        fig4_sizes=[10, 25, 50, 75],
        fig5_sizes=[10, 25, 50],
        nsga_generations=40,
        fig6_generations=[10, 20, 40, 80],
        fig6_n_tasks=40,
        fig6_graphs=2,
        fig7_n_tasks=40,
        fig7_extra_edges=[0, 10, 25, 50],
        table1_sizes_key="smoke",
        table1_parameterizations=2,
        table1_generations=30,
    ),
    "small": ScaleConfig(
        name="small",
        graphs_per_point=10,
        n_random_schedules=50,
        fig3_sizes=[5, 10, 15, 20, 25, 30],
        fig3_zhouliu_max=12,
        zhouliu_time_limit_s=60.0,
        milp_time_limit_s=30.0,
        fig4_sizes=[5, 25, 50, 75, 100, 150, 200],
        fig5_sizes=[5, 25, 50, 75, 100],
        nsga_generations=150,
        fig6_generations=[25, 50, 100, 150, 200, 300],
        fig6_n_tasks=100,
        fig6_graphs=5,
        fig7_n_tasks=100,
        fig7_extra_edges=[0, 25, 50, 100, 150, 200],
        table1_sizes_key="small",
        table1_parameterizations=3,
        table1_generations=100,
        robustness_noise_levels=[0.05, 0.1, 0.2, 0.4],
        robustness_replications=30,
        robustness_n_tasks=60,
        robustness_graphs=5,
        parallel_workers=2,
        contention_n_tasks=60,
        contention_graphs=4,
        contention_jobs=10,
        contention_period_fracs=[1.0, 0.5, 0.25, 0.125],
    ),
    "paper": ScaleConfig(
        name="paper",
        graphs_per_point=30,
        n_random_schedules=100,
        fig3_sizes=list(range(5, 31, 5)),
        fig3_zhouliu_max=20,
        zhouliu_time_limit_s=300.0,
        milp_time_limit_s=120.0,
        fig4_sizes=list(range(5, 201, 5)),
        fig5_sizes=list(range(5, 101, 5)),
        nsga_generations=500,
        fig6_generations=list(range(50, 501, 50)),
        fig6_n_tasks=200,
        fig6_graphs=30,
        fig7_n_tasks=100,
        fig7_extra_edges=list(range(0, 201, 5)),
        table1_sizes_key="paper",
        table1_parameterizations=10,
        table1_generations=500,
        robustness_noise_levels=[0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5],
        robustness_replications=100,
        robustness_n_tasks=100,
        robustness_graphs=10,
        parallel_workers=0,  # one worker per CPU
        contention_n_tasks=100,
        contention_graphs=10,
        contention_jobs=20,
        contention_link_slots=[0, 4, 2, 1],
        contention_period_fracs=[1.0, 0.5, 0.25, 0.125],
        contention_topologies=["shared", "star", "mesh", "ring", "numa"],
    ),
}


def get_scale(scale) -> ScaleConfig:
    """Resolve a scale name or pass a ready-made :class:`ScaleConfig`."""
    if isinstance(scale, ScaleConfig):
        return scale
    try:
        return SCALES[scale]
    except KeyError:
        raise ValueError(
            f"unknown scale {scale!r}; choose from {sorted(SCALES)}"
        ) from None


def bench_scale() -> ScaleConfig:
    """Scale used by the pytest benchmark suite (env REPRO_BENCH_SCALE)."""
    return get_scale(os.environ.get("REPRO_BENCH_SCALE", "smoke"))
