"""Plain-text and CSV reporting of sweep results.

Every figure driver prints the same rows/series the paper plots, as
fixed-width text tables (the reproduction's "figures"), and can dump CSV for
external plotting.
"""

from __future__ import annotations

import csv
import os
from typing import Optional, Sequence, TextIO

from ..obs import get_reporter
from .runner import SweepResult

_R = get_reporter()

__all__ = [
    "format_sweep_table", "print_sweep", "write_csv", "results_dir",
    "open_checkpoint", "maybe_close",
]


def maybe_close(journal):
    """Context manager closing ``journal`` on exit; no-op for ``None``."""
    from contextlib import nullcontext

    return journal if journal is not None else nullcontext(None)


def results_dir() -> str:
    """Directory for CSV output (created on demand)."""
    path = os.environ.get("REPRO_RESULTS_DIR", os.path.join(os.getcwd(), "results"))
    os.makedirs(path, exist_ok=True)
    return path


def open_checkpoint(driver: str, cfg_name: str, seed: int,
                    checkpoint, resume: bool = False):
    """Resolve ``--checkpoint``/``--resume`` into an open journal (or None).

    ``checkpoint`` may be falsy (no journalling), an explicit path, or
    ``"auto"`` — the CLI's bare ``--checkpoint`` — which lands under
    ``results/checkpoints/``.  The journal is fingerprinted with
    ``driver:cfg:seed`` so a resume against a different configuration
    fails loudly instead of splicing mismatched results.
    """
    if not checkpoint:
        if resume:
            raise ValueError("--resume requires --checkpoint")
        return None
    from ..parallel import SweepJournal

    if checkpoint == "auto":
        checkpoint = os.path.join(
            results_dir(), "checkpoints",
            f"{driver}_{cfg_name}_seed{seed}.journal",
        )
    return SweepJournal(
        checkpoint, fingerprint=f"{driver}:{cfg_name}:{seed}", resume=resume
    )


def format_sweep_table(result: SweepResult, *, time_unit: str = "ms") -> str:
    """Render improvements and times of all series as two text tables."""
    series = result.series()
    scale = {"s": 1.0, "ms": 1e3, "us": 1e6}[time_unit]
    lines = [f"== {result.title} =="]

    def table(header: str, getter) -> None:
        lines.append(f"-- {header} --")
        names = [s.name for s in series]
        widths = [max(len(n), 10) for n in names]
        head = f"{result.x_label:>12s} | " + " | ".join(
            f"{n:>{w}s}" for n, w in zip(names, widths)
        )
        lines.append(head)
        lines.append("-" * len(head))
        xs = sorted({x for s in series for x in s.xs})
        for x in xs:
            cells = []
            for s, w in zip(series, widths):
                try:
                    i = s.xs.index(x)
                    cells.append(f"{getter(s, i):>{w}.3f}")
                except ValueError:
                    cells.append(" " * (w - 1) + "-")
            lines.append(f"{x:>12g} | " + " | ".join(cells))

    table("relative improvement", lambda s, i: s.improvement[i])
    table(
        f"execution time ({time_unit})", lambda s, i: s.time_s[i] * scale
    )
    return "\n".join(lines)


def print_sweep(result: SweepResult, *, time_unit: str = "ms") -> None:
    _R.out(format_sweep_table(result, time_unit=time_unit))


def write_csv(
    result: SweepResult,
    path: Optional[str] = None,
    *,
    fileobj: Optional[TextIO] = None,
) -> str:
    """Write the sweep as a long-format CSV; returns the file path."""
    if fileobj is None:
        if path is None:
            fname = result.title.lower().replace(" ", "_").replace("/", "-") + ".csv"
            path = os.path.join(results_dir(), fname)
        handle: TextIO = open(path, "w", newline="")
        close = True
    else:
        handle = fileobj
        close = False
        path = path or "<stream>"
    try:
        writer = csv.writer(handle)
        writer.writerow(
            [result.x_label, "algorithm", "improvement", "time_s", "hit_rate"]
        )
        for point in result.points:
            for name, stats in point.improvements.items():
                writer.writerow(
                    [
                        point.x,
                        name,
                        f"{stats.mean:.6f}",
                        f"{point.times[name].mean:.6f}",
                        f"{stats.hit_rate:.3f}",
                    ]
                )
    finally:
        if close:
            handle.close()
    return path
