"""Ablation experiments for the design choices DESIGN.md calls out.

Three studies, each isolating one mechanism of the decomposition approach:

``cuts``
    Cut-choice strategy of Algorithm 1 (paper Fig. 2 discussion: "a
    well-designed heuristic might exploit this observation").  Compares
    random / first / smallest / largest cutting on almost-SP graphs, both by
    the core fraction retained and by SPFirstFit mapping quality.

``gamma``
    The gamma-threshold look-ahead (paper Sec. III-D / IV-B: "using a
    gamma-threshold heuristic with gamma > 1 does not provide a significant
    benefit in comparison with the FirstFit variant").  Sweeps gamma in
    {1, 1.5, 2, 4} plus the basic variant, reporting quality and evaluation
    counts.

``streaming``
    Value of FPGA dataflow streaming: the same mapper on the paper platform
    with streaming on vs off (an SP-decomposition advantage the paper
    highlights against streaming-blind algorithms).

Run:  python -m repro.experiments.ablation --study cuts --scale smoke
"""

from __future__ import annotations

import argparse
from typing import Callable, List, Optional

import numpy as np

from ..graphs.generators import random_almost_sp_graph, random_sp_graph
from ..mappers import DecompositionMapper
from ..parallel import resolve_workers
from ..platform import Platform, paper_platform
from ..platform.device import Device, DeviceKind
from ._cli import run_cli
from .config import get_scale
from .runner import SweepResult, run_sweep

__all__ = ["run_cuts", "run_gamma", "run_streaming"]


def run_cuts(
    scale="smoke",
    *,
    seed: int = 21,
    workers: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepResult:
    """Cut-strategy ablation over an increasing number of conflicting edges."""
    cfg = get_scale(scale)
    platform = paper_platform()
    n_tasks = cfg.fig7_n_tasks

    def make_graphs(x: float, rng: np.random.Generator) -> List:
        return [
            random_almost_sp_graph(n_tasks, int(x), rng)
            for _ in range(cfg.graphs_per_point)
        ]

    def make_mappers(x: float):
        return [
            DecompositionMapper(
                "series_parallel", "first_fit", cut_strategy=strategy,
                name=f"SPFF-{strategy}",
            )
            for strategy in ("random", "first", "smallest", "largest")
        ]

    return run_sweep(
        "Ablation cut strategies",
        "extra_edges",
        cfg.fig7_extra_edges,
        make_graphs,
        make_mappers,
        platform,
        seed=seed,
        n_random_schedules=cfg.n_random_schedules,
        progress=progress,
        workers=resolve_workers(workers, cfg.parallel_workers),
    )


def run_gamma(
    scale="smoke",
    *,
    seed: int = 22,
    workers: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepResult:
    """gamma-threshold ablation over graph size."""
    cfg = get_scale(scale)
    platform = paper_platform()

    def make_graphs(x: float, rng: np.random.Generator) -> List:
        return [
            random_sp_graph(int(x), rng) for _ in range(cfg.graphs_per_point)
        ]

    def make_mappers(x: float):
        mappers = [
            DecompositionMapper("series_parallel", "first_fit", name="Gamma1"),
        ]
        for gamma in (1.5, 2.0, 4.0):
            mappers.append(
                DecompositionMapper(
                    "series_parallel", "gamma", gamma=gamma,
                    name=f"Gamma{gamma:g}",
                )
            )
        mappers.append(
            DecompositionMapper("series_parallel", "basic", name="Basic")
        )
        return mappers

    return run_sweep(
        "Ablation gamma threshold",
        "n_tasks",
        cfg.fig5_sizes,
        make_graphs,
        make_mappers,
        platform,
        seed=seed,
        n_random_schedules=cfg.n_random_schedules,
        progress=progress,
        workers=resolve_workers(workers, cfg.parallel_workers),
    )


def _streaming_off(base: Platform) -> Platform:
    devices = []
    for d in base.devices:
        if d.streaming:
            devices.append(
                Device(
                    name=d.name, kind=d.kind, lane_gops=d.lane_gops,
                    lanes=d.lanes, stream_gops=d.stream_gops,
                    setup_s=d.setup_s, area_capacity=d.area_capacity,
                    serializes=d.serializes, streaming=False, slots=d.slots,
                )
            )
        else:
            devices.append(d)
    return Platform(
        devices, base.bandwidth_gbps.copy(), base.latency_s.copy()
    )


class _PlatformSwitchMapper(DecompositionMapper):
    """SPFirstFit that maps against a *modified* platform, then reports the
    resulting mapping back in the original evaluator (used to isolate the
    streaming term of the cost model)."""

    def __init__(self, platform: Platform, name: str) -> None:
        super().__init__("series_parallel", "first_fit", name=name)
        self._platform = platform

    def _run(self, evaluator, rng):
        from ..evaluation.evaluator import MappingEvaluator

        inner = MappingEvaluator(
            evaluator.graph, self._platform, suite=evaluator.suite
        )
        return super()._run(inner, rng)


def run_streaming(
    scale="smoke",
    *,
    seed: int = 23,
    workers: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepResult:
    """Streaming on/off ablation over graph size.

    Both variants are *evaluated* on the streaming platform; the "off"
    variant only *optimizes* against a streaming-blind model, so the gap is
    the value of modeling streaming during mapping construction.
    """
    cfg = get_scale(scale)
    platform = paper_platform()
    off = _streaming_off(platform)

    def make_graphs(x: float, rng: np.random.Generator) -> List:
        return [
            random_sp_graph(int(x), rng) for _ in range(cfg.graphs_per_point)
        ]

    def make_mappers(x: float):
        return [
            DecompositionMapper(
                "series_parallel", "first_fit", name="StreamAware"
            ),
            _PlatformSwitchMapper(off, "StreamBlind"),
        ]

    return run_sweep(
        "Ablation streaming awareness",
        "n_tasks",
        cfg.fig5_sizes,
        make_graphs,
        make_mappers,
        platform,
        seed=seed,
        n_random_schedules=cfg.n_random_schedules,
        progress=progress,
        workers=resolve_workers(workers, cfg.parallel_workers),
    )


_STUDIES = {"cuts": run_cuts, "gamma": run_gamma, "streaming": run_streaming}


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description="Ablation studies")
    parser.add_argument("--study", choices=sorted(_STUDIES), default="cuts")
    parser.add_argument(
        "--scale", default="smoke", choices=["smoke", "small", "paper"]
    )
    parser.add_argument("--seed", type=int, default=21)
    parser.add_argument(
        "--workers", type=int, default=None,
        help="process-pool size (default: scale config; 0 = all CPUs)",
    )
    args = parser.parse_args()
    from .reporting import print_sweep

    result = _STUDIES[args.study](
        scale=args.scale, seed=args.seed, workers=args.workers
    )
    print_sweep(result)
