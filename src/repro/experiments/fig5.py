"""Fig. 5 — FirstFit decomposition mapping vs the NSGA-II genetic algorithm.

Paper setup: random SP graphs with 5..100 tasks, NSGAII (500 generations,
population 100) against SNFirstFit and SPFirstFit.

Expected shape: NSGAII copes with local minima and often edges out
SingleNode, but is frequently outperformed by SeriesParallel and its
execution time grows steeply (about 30x slower at n = 100).
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from ..graphs.generators import random_sp_graph
from ..mappers import NsgaIIMapper, sn_first_fit, sp_first_fit
from ..parallel import resolve_workers
from ..platform import paper_platform
from ._cli import run_cli
from .config import get_scale
from .runner import SweepResult, run_sweep

__all__ = ["run"]


def run(
    scale="smoke",
    *,
    seed: int = 5,
    workers: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepResult:
    cfg = get_scale(scale)
    platform = paper_platform()

    def make_graphs(x: float, rng: np.random.Generator) -> List:
        return [
            random_sp_graph(int(x), rng) for _ in range(cfg.graphs_per_point)
        ]

    def make_mappers(x: float):
        return [
            sn_first_fit(),
            sp_first_fit(),
            NsgaIIMapper(generations=cfg.nsga_generations),
        ]

    return run_sweep(
        "Fig5 decomposition vs NSGAII",
        "n_tasks",
        cfg.fig5_sizes,
        make_graphs,
        make_mappers,
        platform,
        seed=seed,
        n_random_schedules=cfg.n_random_schedules,
        progress=progress,
        workers=resolve_workers(workers, cfg.parallel_workers),
    )


if __name__ == "__main__":
    run_cli("Reproduce paper Fig. 5", run, default_seed=5)
