"""Empirical complexity of the decomposition mappers (paper Sec. IV-B).

"Generally, on our test data, all decomposition-based mapping strategies
exhibit a quadratic behavior regarding their execution time, although their
theoretical execution time has a cubic dependency on the number of tasks.
[...] the number of iterations in which an improvement occurs is in practice
much smaller than the number of tasks and grows very slowly."

This driver measures mapper wall time over graph size and fits the power-law
exponent ``time ~ n^alpha`` by least squares on log-log data.  The paper's
claim corresponds to ``alpha`` around 2 (and clearly below the worst-case 3)
for both decomposition strategies.

Run:  python -m repro.experiments.scaling --scale smoke
"""

from __future__ import annotations

import argparse
from typing import Callable, Dict, List, Optional

import numpy as np

from ..graphs.generators import random_sp_graph
from ..mappers import sn_first_fit, sp_first_fit, single_node, series_parallel
from ..obs import get_reporter
from ..parallel import resolve_workers
from ..platform import paper_platform
from .config import get_scale
from .reporting import maybe_close, open_checkpoint
from .runner import SweepResult, run_sweep

__all__ = ["run", "fit_exponents"]


def run(
    scale="smoke",
    *,
    seed: int = 30,
    workers: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    checkpoint=None,
    resume: bool = False,
) -> SweepResult:
    """Measure mapper wall time over graph size.

    ``checkpoint``/``resume`` journal completed per-graph work through
    :func:`~repro.experiments.runner.run_sweep` — note only the
    seed-derived columns of a resumed run are meaningful here, since this
    driver's whole point is wall-clock timing.
    """
    cfg = get_scale(scale)
    platform = paper_platform()

    def make_graphs(x: float, rng: np.random.Generator) -> List:
        return [
            random_sp_graph(int(x), rng) for _ in range(cfg.graphs_per_point)
        ]

    def make_mappers(x: float):
        return [single_node(), series_parallel(), sn_first_fit(), sp_first_fit()]

    journal = open_checkpoint("scaling", cfg.name, seed, checkpoint, resume)
    with maybe_close(journal):
        return run_sweep(
            "Scaling decomposition mappers",
            "n_tasks",
            cfg.fig4_sizes,
            make_graphs,
            make_mappers,
            platform,
            seed=seed,
            n_random_schedules=max(5, cfg.n_random_schedules // 5),
            progress=progress,
            workers=resolve_workers(workers, cfg.parallel_workers),
            journal=journal,
        )


def fit_exponents(result: SweepResult) -> Dict[str, float]:
    """Least-squares power-law exponent of time vs n per algorithm.

    Sizes below 10 tasks are dropped (constant overheads dominate there).
    """
    out: Dict[str, float] = {}
    for series in result.series():
        xs = np.array(series.xs)
        ts = np.array(series.time_s)
        keep = (xs >= 10) & (ts > 0)
        if keep.sum() < 2:
            out[series.name] = float("nan")
            continue
        slope, _ = np.polyfit(np.log(xs[keep]), np.log(ts[keep]), 1)
        out[series.name] = float(slope)
    return out


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description="Empirical mapper complexity")
    parser.add_argument(
        "--scale", default="smoke", choices=["smoke", "small", "paper"]
    )
    parser.add_argument("--seed", type=int, default=30)
    parser.add_argument(
        "--workers", type=int, default=None,
        help="process-pool size (default: scale config; 0 = all CPUs)",
    )
    parser.add_argument(
        "--checkpoint", nargs="?", const="auto", metavar="PATH",
        help="journal completed cells (default path under results/checkpoints)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="reuse journalled cells from an interrupted --checkpoint run",
    )
    args = parser.parse_args()
    from .reporting import print_sweep

    result = run(scale=args.scale, seed=args.seed, workers=args.workers,
                 checkpoint=args.checkpoint, resume=args.resume)
    print_sweep(result)
    reporter = get_reporter()
    reporter.out("\nfitted time ~ n^alpha exponents:")
    for name, alpha in fit_exponents(result).items():
        reporter.out(f"  {name:>16s}: alpha = {alpha:.2f}")
