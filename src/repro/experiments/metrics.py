"""Evaluation metrics (paper Sec. IV-A).

The central metric is the *average positive relative improvement*:

    "we generally compute the average positive relative improvement of the
    makespan, i.e., the average relative improvement over a pure CPU
    mapping, whereas we count deteriorations as zero improvements."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["positive_improvement", "AggregateStats", "aggregate"]


def positive_improvement(cpu_makespan: float, makespan: float) -> float:
    """Relative improvement over the CPU baseline, truncated at zero."""
    if not np.isfinite(makespan) or makespan >= cpu_makespan:
        return 0.0
    return float((cpu_makespan - makespan) / cpu_makespan)


@dataclass(frozen=True)
class AggregateStats:
    """Aggregated metric over a set of graphs."""

    mean: float
    std: float
    minimum: float
    maximum: float
    count: int
    #: fraction of graphs with a strictly positive improvement
    hit_rate: float

    def __str__(self) -> str:
        return f"{self.mean:.3f} (±{self.std:.3f}, hit {self.hit_rate:.0%})"


def aggregate(values: Sequence[float]) -> AggregateStats:
    """Aggregate per-graph improvements into summary statistics."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return AggregateStats(0.0, 0.0, 0.0, 0.0, 0, 0.0)
    return AggregateStats(
        mean=float(arr.mean()),
        std=float(arr.std()),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        count=int(arr.size),
        hit_rate=float((arr > 0).mean()),
    )
