"""Shared CLI plumbing for the figure drivers (``python -m repro.experiments.figN``)."""

from __future__ import annotations

import argparse
from typing import Callable

from ..obs import get_reporter
from .reporting import print_sweep, write_csv
from .runner import SweepResult

__all__ = ["run_cli"]

_R = get_reporter()


def _progress(msg: str) -> None:
    _R.out(f"  [{msg}]")


def run_cli(
    description: str,
    run: Callable[..., SweepResult],
    *,
    default_seed: int,
    time_unit: str = "ms",
) -> None:
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--scale",
        default="smoke",
        choices=["smoke", "small", "paper"],
        help="experiment scale (see repro.experiments.config)",
    )
    parser.add_argument("--seed", type=int, default=default_seed)
    parser.add_argument(
        "--workers", type=int, default=None,
        help="process-pool size (default: scale config; 0 = all CPUs)",
    )
    parser.add_argument(
        "--csv", action="store_true", help="also write a CSV into ./results/"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-point progress lines"
    )
    args = parser.parse_args()
    progress = None if args.quiet else _progress
    result = run(
        scale=args.scale, seed=args.seed, workers=args.workers,
        progress=progress,
    )
    print_sweep(result, time_unit=time_unit)
    if args.csv:
        path = write_csv(result)
        _R.out(f"csv written to {path}")
