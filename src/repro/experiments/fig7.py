"""Fig. 7 — almost-series-parallel graphs with conflicting edges.

Paper setup: task graphs with 100 nodes and 0..200 additional randomly
inserted edges (directed along a random topological order, so most are
conflicting); algorithms HEFT, PEFT, NSGAII, SNFirstFit, SPFirstFit.

Expected shape: added data transfers slightly depress every algorithm's
improvement; the series-parallel decomposition *converges towards the
single-node decomposition* as its trees shatter into single edges, and its
execution time grows with the number of conflicting edges (up to ~30 %
above SingleNode at 200 extra edges) while SingleNode's stays flat.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from ..graphs.generators import random_almost_sp_graph
from ..mappers import (
    HeftMapper,
    NsgaIIMapper,
    PeftMapper,
    sn_first_fit,
    sp_first_fit,
)
from ..parallel import resolve_workers
from ..platform import paper_platform
from ._cli import run_cli
from .config import get_scale
from .runner import SweepResult, run_sweep

__all__ = ["run"]


def run(
    scale="smoke",
    *,
    seed: int = 7,
    workers: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepResult:
    cfg = get_scale(scale)
    platform = paper_platform()

    def make_graphs(x: float, rng: np.random.Generator) -> List:
        return [
            random_almost_sp_graph(cfg.fig7_n_tasks, int(x), rng)
            for _ in range(cfg.graphs_per_point)
        ]

    def make_mappers(x: float):
        return [
            HeftMapper(),
            PeftMapper(),
            NsgaIIMapper(generations=cfg.nsga_generations),
            sn_first_fit(),
            sp_first_fit(),
        ]

    return run_sweep(
        "Fig7 almost series-parallel",
        "extra_edges",
        cfg.fig7_extra_edges,
        make_graphs,
        make_mappers,
        platform,
        seed=seed,
        n_random_schedules=cfg.n_random_schedules,
        progress=progress,
        workers=resolve_workers(workers, cfg.parallel_workers),
    )


if __name__ == "__main__":
    run_cli("Reproduce paper Fig. 7", run, default_seed=7)
