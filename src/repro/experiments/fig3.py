"""Fig. 3 — decomposition mapping vs three MILPs on random SP graphs.

Paper setup: random series-parallel graphs with 5..30 tasks (30 graphs per
size); algorithms ``WGDP Time``, ``WGDP Device``, ``ZhouLiu``,
``SingleNode``, ``SeriesParallel``.  ZhouLiu is only run up to 20 tasks
("timed out at a time limit of 5 minutes for graphs that have more than 20
nodes").

Expected shape: ZhouLiu good-but-tiny-scale; WGDP-Time the best MILP but
sharply slowing with size; the decomposition mappers match or beat every
MILP while staying orders of magnitude faster than the time-based ones;
WGDP-Dev is fast but clearly worse.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from ..graphs.generators import random_sp_graph
from ..mappers import (
    WgdpDeviceMapper,
    WgdpTimeMapper,
    ZhouLiuMapper,
    series_parallel,
    single_node,
)
from ..parallel import resolve_workers
from ..platform import paper_platform
from ._cli import run_cli
from .config import get_scale
from .runner import SweepResult, run_sweep

__all__ = ["run"]


def run(
    scale="smoke",
    *,
    seed: int = 3,
    workers: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepResult:
    cfg = get_scale(scale)
    platform = paper_platform()

    def make_graphs(x: float, rng: np.random.Generator) -> List:
        return [
            random_sp_graph(int(x), rng) for _ in range(cfg.graphs_per_point)
        ]

    def make_mappers(x: float):
        mappers = [
            WgdpTimeMapper(time_limit_s=cfg.milp_time_limit_s),
            WgdpDeviceMapper(time_limit_s=cfg.milp_time_limit_s),
            single_node(),
            series_parallel(),
        ]
        if x <= cfg.fig3_zhouliu_max:
            mappers.insert(
                2, ZhouLiuMapper(time_limit_s=cfg.zhouliu_time_limit_s)
            )
        return mappers

    return run_sweep(
        "Fig3 decomposition vs MILPs",
        "n_tasks",
        cfg.fig3_sizes,
        make_graphs,
        make_mappers,
        platform,
        seed=seed,
        n_random_schedules=cfg.n_random_schedules,
        progress=progress,
        workers=resolve_workers(workers, cfg.parallel_workers),
    )


if __name__ == "__main__":
    run_cli("Reproduce paper Fig. 3", run, default_seed=3)
