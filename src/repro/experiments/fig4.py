"""Fig. 4 — decomposition mapping vs HEFT/PEFT on random SP graphs.

Paper setup: sizes 5..200 (step 5), 30 graphs per size; algorithms HEFT,
PEFT, SingleNode, SeriesParallel and their FirstFit variants.

Expected shape: HEFT/PEFT quality *decays* with graph size (their local view
cannot see the global impact of one task's mapping) while the decomposition
mappers stay roughly flat, SeriesParallel about 5 pp above SingleNode;
FirstFit matches the basic variants at a fraction of the execution time, and
SeriesParallel becomes *cheaper* than SingleNode for large graphs (larger
subgraphs replaced at once = fewer iterations).
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from ..graphs.generators import random_sp_graph
from ..mappers import (
    HeftMapper,
    PeftMapper,
    series_parallel,
    single_node,
    sn_first_fit,
    sp_first_fit,
)
from ..parallel import resolve_workers
from ..platform import paper_platform
from ._cli import run_cli
from .config import get_scale
from .runner import SweepResult, run_sweep

__all__ = ["run"]


def run(
    scale="smoke",
    *,
    seed: int = 4,
    workers: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepResult:
    cfg = get_scale(scale)
    platform = paper_platform()

    def make_graphs(x: float, rng: np.random.Generator) -> List:
        return [
            random_sp_graph(int(x), rng) for _ in range(cfg.graphs_per_point)
        ]

    def make_mappers(x: float):
        return [
            HeftMapper(),
            PeftMapper(),
            single_node(),
            series_parallel(),
            sn_first_fit(),
            sp_first_fit(),
        ]

    return run_sweep(
        "Fig4 decomposition vs HEFT PEFT",
        "n_tasks",
        cfg.fig4_sizes,
        make_graphs,
        make_mappers,
        platform,
        seed=seed,
        n_random_schedules=cfg.n_random_schedules,
        progress=progress,
        workers=resolve_workers(workers, cfg.parallel_workers),
    )


if __name__ == "__main__":
    run_cli("Reproduce paper Fig. 4", run, default_seed=4)
