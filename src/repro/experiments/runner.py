"""Experiment runner: sweep mappers over graph collections.

The drivers in :mod:`repro.experiments` (one per paper figure/table) all
follow the same pattern:

1. generate a list of graphs per sweep point (30 per point at paper scale),
2. for every graph build one :class:`MappingEvaluator` (so all algorithms
   see the *same* schedule suite),
3. run every mapper, recording the positive relative improvement and the
   mapper wall-clock time,
4. aggregate per sweep point into :class:`SweepSeries` rows.

Seeds are derived from a root :class:`numpy.random.SeedSequence`, making
every experiment reproducible end to end.  Graphs within a point are
independent work items, so ``run_point``/``run_sweep`` fan them out
through :mod:`repro.parallel` — ``workers=N`` results are bit-identical
to serial ones (see the seed-sharding contract in
``src/repro/parallel/README.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..evaluation.evaluator import MappingEvaluator
from ..graphs.taskgraph import TaskGraph
from ..mappers.base import Mapper
from ..obs import metrics as _obs_metrics
from ..obs import trace as _trace
from ..parallel import SupervisedPool, parallel_map, plan_from_env
from ..platform.platform import Platform
from .metrics import AggregateStats, aggregate

__all__ = ["PointResult", "SweepSeries", "SweepResult", "run_point", "run_sweep"]


@dataclass
class PointResult:
    """Results of all mappers on one sweep point (a set of graphs)."""

    x: float
    improvements: Dict[str, AggregateStats]
    times: Dict[str, AggregateStats]
    evaluations: Dict[str, float]


@dataclass
class SweepSeries:
    """One algorithm's line across the sweep (improvement + time)."""

    name: str
    xs: List[float] = field(default_factory=list)
    improvement: List[float] = field(default_factory=list)
    time_s: List[float] = field(default_factory=list)


@dataclass
class SweepResult:
    """A full sweep: per-point aggregates and per-algorithm series."""

    title: str
    x_label: str
    points: List[PointResult] = field(default_factory=list)

    def series(self) -> List[SweepSeries]:
        names: List[str] = []
        for p in self.points:
            for name in p.improvements:
                if name not in names:
                    names.append(name)
        out = []
        for name in names:
            s = SweepSeries(name)
            for p in self.points:
                if name in p.improvements:
                    s.xs.append(p.x)
                    s.improvement.append(p.improvements[name].mean)
                    s.time_s.append(p.times[name].mean)
            out.append(s)
        return out


def _point_graph_worker(item) -> List[tuple]:
    """Run every mapper on one graph (one parallel work item).

    Module-level so the process pool can pickle it by reference; all
    randomness comes from the :class:`~numpy.random.SeedSequence`
    carried in the item (seed-sharding contract).
    """
    g, gseed, mappers, platform, n_random_schedules = item
    eval_rng, *mapper_rngs = [
        np.random.default_rng(s) for s in gseed.spawn(1 + len(mappers))
    ]
    evaluator = MappingEvaluator(
        g, platform, rng=eval_rng, n_random_schedules=n_random_schedules
    )
    out = []
    for mapper, rng in zip(mappers, mapper_rngs):
        result = mapper.map(evaluator, rng=rng)
        out.append((
            mapper.name,
            evaluator.relative_improvement(result.mapping),
            result.elapsed_s,
            float(result.n_evaluations),
        ))
    return out


def run_point(
    mappers: Sequence[Mapper],
    graphs: Sequence[TaskGraph],
    platform: Platform,
    *,
    seed=0,
    n_random_schedules: int = 100,
    x: float = 0.0,
    workers: int = 1,
    executor=None,
    journal=None,
) -> PointResult:
    """Run every mapper on every graph of one sweep point.

    ``seed`` may be an int or a :class:`numpy.random.SeedSequence`.
    ``workers > 1`` fans the graphs out across a process pool; seeds are
    spawned per graph before dispatch, so results are identical to a
    serial run.  ``executor`` reuses a caller-owned pool (see
    :func:`repro.parallel.parallel_map`); a
    :class:`~repro.parallel.SupervisedPool` adds retry/timeout/crash
    recovery.  ``journal`` checkpoints per-graph results for resume.
    """
    seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    graph_seeds = seq.spawn(len(graphs))
    improvements: Dict[str, List[float]] = {m.name: [] for m in mappers}
    times: Dict[str, List[float]] = {m.name: [] for m in mappers}
    evals: Dict[str, List[float]] = {m.name: [] for m in mappers}
    items = [
        (g, gseed, list(mappers), platform, n_random_schedules)
        for g, gseed in zip(graphs, graph_seeds)
    ]
    with _trace.span(
        "experiment.point", "experiment",
        {"x": x, "graphs": len(items)} if _trace.enabled() else None,
    ):
        for rows in parallel_map(_point_graph_worker, items, workers=workers,
                                 executor=executor, journal=journal):
            for name, imp, elapsed, n_evals in rows:
                improvements[name].append(imp)
                times[name].append(elapsed)
                evals[name].append(n_evals)
    registry = _obs_metrics.get_registry()
    if registry is not None:
        registry.counter("experiment.points").inc()
        registry.counter("experiment.graphs").inc(len(items))
    return PointResult(
        x=x,
        improvements={k: aggregate(v) for k, v in improvements.items()},
        times={k: aggregate(v) for k, v in times.items()},
        evaluations={k: float(np.mean(v)) if v else 0.0 for k, v in evals.items()},
    )


def run_sweep(
    title: str,
    x_label: str,
    xs: Sequence[float],
    make_graphs: Callable[[float, np.random.Generator], List[TaskGraph]],
    make_mappers: Callable[[float], Sequence[Mapper]],
    platform: Platform,
    *,
    seed: int = 0,
    n_random_schedules: int = 100,
    progress: Optional[Callable[[str], None]] = None,
    workers: int = 1,
    journal=None,
) -> SweepResult:
    """Run a full parameter sweep.

    ``make_graphs(x, rng)`` builds the graph set of a sweep point;
    ``make_mappers(x)`` the algorithms (some figures vary algorithm
    parameters along x, e.g. Fig. 6 sweeps NSGA-II generations).
    ``workers`` sizes the supervised process pool, created once and
    reused across every sweep point (per-point pools would pay
    fork/teardown at each x); the pool retries transient failures,
    times out hung workers and rebuilds after crashes — results are
    unaffected (seed-sharding contract).  ``journal`` (a
    :class:`~repro.parallel.SweepJournal`) checkpoints every completed
    graph under a per-point key scope so an interrupted sweep resumes
    without recomputation.
    """
    result = SweepResult(title=title, x_label=x_label)
    root = np.random.SeedSequence(seed)
    workers = max(1, int(workers))
    with SupervisedPool(workers, chaos=plan_from_env()) as executor:
        for i, (x, sub) in enumerate(zip(xs, root.spawn(len(xs)))):
            gen_seed, point_seed = sub.spawn(2)
            rng = np.random.default_rng(gen_seed)
            graphs = make_graphs(x, rng)
            mappers = make_mappers(x)
            point = run_point(
                mappers,
                graphs,
                platform,
                seed=point_seed,
                n_random_schedules=n_random_schedules,
                x=float(x),
                workers=workers,
                executor=executor,
                journal=journal.scoped(f"point{i}:") if journal is not None
                else None,
            )
            result.points.append(point)
            if progress is not None:
                progress(f"{title}: {x_label}={x} done")
    return result
