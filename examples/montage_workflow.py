"""Map a montage-style astronomy workflow (paper Table I scenario).

Montage mosaics have a characteristic shape: a wide projection fan feeding a
narrow, compute-heavy tail (``mAdd``/``mShrink``).  The paper observes that
"a small number of nodes near the end of the computation are responsible for
most of the makespan", which makes PEFT competitive here while plain HEFT
falls behind.

This example generates a 120-task montage-like workflow, runs four mappers
and prints a comparison plus where each algorithm puts the heavy tail tasks.

Run:  python examples/montage_workflow.py [n_tasks]
"""

import sys

import numpy as np

from repro.evaluation import MappingEvaluator
from repro.graphs.generators import augment_workflow, make_workflow
from repro.mappers import HeftMapper, NsgaIIMapper, PeftMapper, sp_first_fit
from repro.platform import paper_platform


def main(n_tasks: int = 120) -> None:
    rng = np.random.default_rng(7)
    graph = make_workflow("montage", n_tasks, rng)
    augment_workflow(graph, rng)
    print(f"montage-like workflow: {graph.n_tasks} tasks, {graph.n_edges} edges")

    platform = paper_platform()
    evaluator = MappingEvaluator(graph, platform, rng=np.random.default_rng(1))

    # the four heaviest tasks are the mosaic tail (imgtbl/add/shrink/jpeg)
    by_weight = sorted(
        graph.tasks(), key=lambda t: graph.params(t).complexity, reverse=True
    )
    tail = by_weight[:4]
    names = [d.name for d in platform.devices]

    mappers = [
        HeftMapper(),
        PeftMapper(),
        sp_first_fit(),
        NsgaIIMapper(generations=60),
    ]
    print(f"{'algorithm':>12s} | {'improvement':>11s} | {'time':>9s} | heavy-tail placement")
    print("-" * 75)
    for mapper in mappers:
        res = mapper.map(evaluator, rng=np.random.default_rng(2))
        imp = evaluator.relative_improvement(res.mapping)
        placement = ", ".join(
            names[res.mapping[evaluator.model.index[t]]] for t in tail
        )
        print(
            f"{mapper.name:>12s} | {imp:>10.1%} | {res.elapsed_s * 1e3:7.1f}ms"
            f" | {placement}"
        )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 120)
