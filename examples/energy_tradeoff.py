"""Makespan/energy trade-off mapping (the paper's Sec. V extension).

The paper notes its decomposition principle transfers to multi-objective
optimization.  This example maps one workflow three ways:

1. plain SPFirstFit (makespan only),
2. the energy-aware decomposition mapper for a sweep of alpha weights
   (alpha * makespan + (1 - alpha) * energy, both normalized),
3. the true Pareto NSGA-II over (makespan, energy), printing its front.

The FPGA draws 18 W against the CPU's 155 W and the GPU's 210 W, so
energy-leaning mappings push work towards the FPGA even where it is slower.

Run:  python examples/energy_tradeoff.py
"""

import numpy as np

from repro.evaluation import EnergyModel, MappingEvaluator
from repro.graphs.generators import random_sp_graph
from repro.mappers import (
    EnergyAwareDecompositionMapper,
    ParetoNsgaIIMapper,
    sp_first_fit,
)
from repro.platform import paper_platform


def main() -> None:
    graph = random_sp_graph(40, np.random.default_rng(17))
    platform = paper_platform()
    evaluator = MappingEvaluator(graph, platform, rng=np.random.default_rng(0))
    energy = EnergyModel(evaluator.model)

    cpu = evaluator.cpu_mapping()
    cpu_ms = evaluator.cpu_construction_makespan
    cpu_e = energy.energy(cpu)
    print(f"baseline (all CPU): {cpu_ms * 1e3:7.1f} ms, {cpu_e:7.1f} J\n")

    print("scalarized decomposition mapper (alpha sweep):")
    print(f"{'alpha':>6s} | {'makespan':>10s} | {'energy':>8s} | devices used")
    print("-" * 55)
    names = [d.name for d in platform.devices]
    for alpha in (1.0, 0.75, 0.5, 0.25, 0.0):
        mapper = EnergyAwareDecompositionMapper(alpha=alpha)
        res = mapper.map(evaluator, rng=np.random.default_rng(1))
        ms = res.makespan
        e = energy.energy(res.mapping, makespan=ms)
        counts = {
            names[d]: int(np.sum(res.mapping == d))
            for d in sorted(set(res.mapping.tolist()))
        }
        print(f"{alpha:>6.2f} | {ms * 1e3:>8.1f}ms | {e:>7.1f}J | {counts}")

    print("\nPareto NSGA-II front (makespan-sorted):")
    mapper = ParetoNsgaIIMapper(generations=80, population_size=60)
    res = mapper.map(evaluator, rng=np.random.default_rng(2))
    for _, ms, e in mapper.last_front_:
        bar = "#" * max(1, int((cpu_e - e) / cpu_e * 40))
        print(f"  {ms * 1e3:8.1f} ms  {e:7.1f} J  {bar}")
    knee_ms = res.makespan
    print(f"knee point: {knee_ms * 1e3:.1f} ms "
          f"(front size {int(res.stats['front_size'])})")


if __name__ == "__main__":
    main()
