"""Define a custom platform: a CPU with two area-constrained FPGAs.

Shows the platform-model API beyond the paper's preset: devices are plain
dataclasses, the interconnect is a bandwidth/latency matrix, and every
mapper works unchanged on any platform.  With two FPGAs the decomposition
mapper has to *split* streaming chains across area budgets — a scenario the
single-node mapper handles poorly.

Run:  python examples/custom_platform.py
"""

import numpy as np

from repro.evaluation import MappingEvaluator
from repro.graphs.generators import augment_workflow, make_workflow
from repro.mappers import HeftMapper, sn_first_fit, sp_first_fit
from repro.platform import Platform, cpu, fpga


def build_platform() -> Platform:
    devices = [
        cpu("host", lanes=4, slots=4),
        fpga("fpga_a", stream_gops=3.0, area_capacity=50.0),
        fpga("fpga_b", stream_gops=2.0, area_capacity=80.0),
    ]
    #            host    fpga_a  fpga_b
    bandwidth = [
        [np.inf, 8.0, 8.0],
        [8.0, np.inf, 2.0],   # direct FPGA<->FPGA link is slow
        [8.0, 2.0, np.inf],
    ]
    latency = [
        [0.0, 1e-4, 1e-4],
        [1e-4, 0.0, 3e-4],
        [1e-4, 3e-4, 0.0],
    ]
    return Platform(devices, bandwidth, latency)


def main() -> None:
    platform = build_platform()
    rng = np.random.default_rng(11)
    graph = make_workflow("epigenomics", 80, rng)  # parallel chains
    augment_workflow(graph, rng)
    print(f"platform: {platform}")
    print(f"workflow: {graph.n_tasks} tasks, {graph.n_edges} edges")

    evaluator = MappingEvaluator(graph, platform, rng=np.random.default_rng(0))
    print(f"pure-CPU makespan: {evaluator.cpu_reported_makespan * 1e3:.1f} ms\n")

    names = [d.name for d in platform.devices]
    for mapper in (HeftMapper(), sn_first_fit(), sp_first_fit()):
        res = mapper.map(evaluator, rng=np.random.default_rng(1))
        counts = {n: int(np.sum(res.mapping == i)) for i, n in enumerate(names)}
        usage = evaluator.model.area_usage(res.mapping)
        area_txt = ", ".join(
            f"{names[d]}={usage[d]:.0f}/{platform.devices[d].area_capacity:.0f}"
            for d in sorted(usage)
        )
        print(
            f"{mapper.name:>12s}: improvement "
            f"{evaluator.relative_improvement(res.mapping):6.1%}  "
            f"placement {counts}  area {area_txt}"
        )


if __name__ == "__main__":
    main()
