"""Import a WfCommons workflow instance and map it.

The paper's Table I uses benchmark instances derived from WfCommons [26].
This example ships a small wfformat JSON (written on first run into
``examples/data/``) and shows the full path a user with *real* instance
files would take:

1. parse the wfformat file into a :class:`TaskGraph`
   (runtimes -> complexity, file sizes -> edge volumes),
2. augment parallelizability/streamability "analogously to Sec. IV-B",
3. map with the decomposition mapper and inspect the resulting schedule.

Run:  python examples/wfcommons_import.py [path/to/instance.json]
"""

import json
import os
import sys

import numpy as np

from repro.evaluation import MappingEvaluator, render_gantt, simulate_trace
from repro.graphs.generators import augment_workflow
from repro.io import load_wfcommons
from repro.mappers import HeftMapper, sp_first_fit
from repro.platform import paper_platform

SAMPLE = {
    "name": "genome-sample",
    "schemaVersion": "1.3",
    "workflow": {
        "tasks": [
            {
                "name": "individuals_split",
                "runtime": 3.0,
                "children": [f"individuals_{i}" for i in range(6)],
                "files": [
                    {"link": "output", "name": f"chunk_{i}",
                     "sizeInBytes": 40_000_000}
                    for i in range(6)
                ],
            },
            *[
                {
                    "name": f"individuals_{i}",
                    "runtime": 9.0 + i,
                    "children": ["merge"],
                    "files": [
                        {"link": "input", "name": f"chunk_{i}",
                         "sizeInBytes": 40_000_000},
                        {"link": "output", "name": f"aligned_{i}",
                         "sizeInBytes": 25_000_000},
                    ],
                }
                for i in range(6)
            ],
            {
                "name": "merge",
                "runtime": 12.0,
                "children": ["frequency", "mutation_overlap"],
                "files": [
                    *[
                        {"link": "input", "name": f"aligned_{i}",
                         "sizeInBytes": 25_000_000}
                        for i in range(6)
                    ],
                    {"link": "output", "name": "merged",
                     "sizeInBytes": 120_000_000},
                ],
            },
            {
                "name": "frequency",
                "runtime": 8.0,
                "files": [{"link": "input", "name": "merged",
                           "sizeInBytes": 120_000_000}],
            },
            {
                "name": "mutation_overlap",
                "runtime": 10.0,
                "files": [{"link": "input", "name": "merged",
                           "sizeInBytes": 120_000_000}],
            },
        ]
    },
}


def sample_path() -> str:
    path = os.path.join(os.path.dirname(__file__), "data",
                        "sample_1000genome.json")
    os.makedirs(os.path.dirname(path), exist_ok=True)
    if not os.path.exists(path):
        with open(path, "w") as fh:
            json.dump(SAMPLE, fh, indent=2)
    return path


def main(path: str) -> None:
    graph = load_wfcommons(path)
    rng = np.random.default_rng(4)
    augment_workflow(graph, rng)
    print(f"imported {path}: {graph.n_tasks} tasks, {graph.n_edges} edges")

    evaluator = MappingEvaluator(
        graph, paper_platform(), rng=np.random.default_rng(0)
    )
    for mapper in (HeftMapper(), sp_first_fit()):
        res = mapper.map(evaluator, rng=np.random.default_rng(1))
        print(
            f"  {mapper.name:>10s}: improvement "
            f"{evaluator.relative_improvement(res.mapping):6.1%} "
            f"in {res.elapsed_s * 1e3:.1f} ms"
        )
    trace = simulate_trace(evaluator.model, res.mapping)
    print("\nschedule of the decomposition mapping:")
    print(render_gantt(trace, evaluator.model, width=64))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else sample_path())
