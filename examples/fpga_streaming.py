"""FPGA dataflow streaming: why mapping whole subgraphs pays off.

The paper's central argument for series-parallel decomposition: an FPGA can
*stream* data along a chain of co-mapped tasks — the consumer starts as soon
as the producer's pipeline is filled, and on-chip edges are free.  A mapper
that only moves single tasks cannot discover this (each single move adds
transfers that outweigh the gain: a local minimum), while a subgraph move
relocates the whole chain at once.

This example builds an epigenomics-style pipeline-of-chains, then compares:

1. the pure-CPU baseline,
2. the best *single-task* offload (always bad here),
3. the whole-chain FPGA mapping that the SP decomposition finds,
4. the same chain mapping evaluated *without* streaming (ablation).

Run:  python examples/fpga_streaming.py
"""

import numpy as np

from repro.evaluation import MappingEvaluator
from repro.graphs import TaskGraph
from repro.mappers import sn_first_fit, sp_first_fit
from repro.platform import Platform, paper_platform
from repro.platform.device import Device, DeviceKind


def build_pipeline(n_lanes: int = 3, chain_len: int = 6) -> TaskGraph:
    """Parallel chains of sequential-but-streamable tasks (FPGA's sweet spot)."""
    g = TaskGraph()
    tid = 0
    split = tid
    g.add_task(split, complexity=2.0, parallelizability=0.5, streamability=4.0,
               area=2.0)
    tid += 1
    merge_id = n_lanes * chain_len + 1
    for _ in range(n_lanes):
        prev = split
        for _ in range(chain_len):
            g.add_task(
                tid,
                complexity=8.0,
                parallelizability=0.1,   # hopeless on the GPU
                streamability=9.0,       # excellent on the FPGA
                area=3.0,
            )
            g.add_edge(prev, tid, data_mb=100.0)
            prev = tid
            tid += 1
        g.add_edge(prev, merge_id, data_mb=50.0)
    g.add_task(merge_id, complexity=2.0, parallelizability=0.5,
               streamability=4.0, area=2.0)
    return g


def no_streaming_platform() -> Platform:
    base = paper_platform()
    devices = list(base.devices)
    f = devices[2]
    devices[2] = Device(
        name=f.name, kind=DeviceKind.FPGA, lane_gops=f.lane_gops,
        stream_gops=f.stream_gops, setup_s=f.setup_s,
        area_capacity=f.area_capacity, serializes=False, streaming=False,
    )
    return Platform(devices, base.bandwidth_gbps.copy(), base.latency_s.copy())


def main() -> None:
    graph = build_pipeline()
    platform = paper_platform()
    ev = MappingEvaluator(graph, platform, rng=np.random.default_rng(0))
    cpu_ms = ev.cpu_reported_makespan
    print(f"pipeline: {graph.n_tasks} tasks in 3 chains; "
          f"pure-CPU makespan {cpu_ms * 1e3:.1f} ms")

    # best single-task offload
    best_single = cpu_ms
    for i in range(ev.n_tasks):
        for d in (1, 2):
            m = ev.cpu_mapping()
            m[i] = d
            best_single = min(best_single, ev.reported_makespan(m))
    print(f"best single-task offload:   {best_single * 1e3:8.1f} ms "
          f"({1 - best_single / cpu_ms:+.1%})")

    sn = sn_first_fit().map(ev, rng=np.random.default_rng(1))
    print(f"SingleNode FirstFit:        {ev.reported_makespan(sn.mapping) * 1e3:8.1f} ms "
          f"({ev.relative_improvement(sn.mapping):+.1%})")

    sp = sp_first_fit().map(ev, rng=np.random.default_rng(1))
    sp_ms = ev.reported_makespan(sp.mapping)
    on_fpga = int(np.sum(sp.mapping == 2))
    print(f"SeriesParallel FirstFit:    {sp_ms * 1e3:8.1f} ms "
          f"({ev.relative_improvement(sp.mapping):+.1%}), "
          f"{on_fpga}/{ev.n_tasks} tasks on the FPGA")

    # ablation: same mapping, streaming disabled in the cost model
    ev_nostream = MappingEvaluator(
        graph, no_streaming_platform(), rng=np.random.default_rng(0)
    )
    ns_ms = ev_nostream.reported_makespan(sp.mapping)
    print(f"same mapping w/o streaming: {ns_ms * 1e3:8.1f} ms "
          f"(streaming contributes {max(0.0, 1 - sp_ms / ns_ms):.1%})")


if __name__ == "__main__":
    main()
