"""Stress-test two mappers' montage mappings under runtime noise.

The evaluator ranks mappings by their *model* makespan, but the model is
deterministic — a mapping that packs the critical path tightly can be
fragile once real task runtimes jitter.  This example maps a montage-style
workflow with HEFT and the decomposition mapper (SPFirstFit), replays both
mappings through the runtime engine under 20 lognormal-noise replications,
and prints the robustness comparison: who keeps more of their promised
makespan when runtimes wobble, and what happens to each when the device
carrying the mosaic's heavy tail dies halfway through the run.

Run:  python examples/runtime_robustness.py [n_tasks]
"""

import sys

import numpy as np

from repro.evaluation import MappingEvaluator
from repro.graphs.generators import augment_workflow, make_workflow
from repro.mappers import HeftMapper, sp_first_fit
from repro.platform import paper_platform
from repro.runtime import (
    DeviceFailure,
    LognormalNoise,
    replicate,
    robustness_report,
    simulate_mapping,
)

N_REPLICATIONS = 20
NOISE = LognormalNoise(0.25, transfer_sigma=0.1)


def main(n_tasks: int = 120) -> None:
    rng = np.random.default_rng(7)
    graph = make_workflow("montage", n_tasks, rng)
    augment_workflow(graph, rng)
    platform = paper_platform()
    evaluator = MappingEvaluator(graph, platform, rng=np.random.default_rng(1))
    print(
        f"montage-like workflow: {graph.n_tasks} tasks, "
        f"{graph.n_edges} edges — {N_REPLICATIONS} replications of "
        f"{NOISE.describe()}"
    )

    mappings = {}
    for mapper in (HeftMapper(), sp_first_fit()):
        mappings[mapper.name] = list(
            mapper.map(evaluator, rng=np.random.default_rng(2)).mapping
        )

    header = (
        f"{'algorithm':>12s} | {'analytic':>9s} | {'mean':>9s} | "
        f"{'p95':>9s} | {'degradation':>11s} | {'p95 degr.':>9s}"
    )
    print(header)
    print("-" * len(header))
    for name, mapping in mappings.items():
        analytic = evaluator.model.simulate(mapping)
        report = robustness_report(
            replicate(graph, platform, mapping, n=N_REPLICATIONS,
                      noise=NOISE, seed=11),
            analytic,
        )
        print(
            f"{name:>12s} | {analytic * 1e3:>7.2f}ms | "
            f"{report.mean * 1e3:>7.2f}ms | {report.p95 * 1e3:>7.2f}ms | "
            f"{report.degradation:>11.1%} | {report.p95_degradation:>9.1%}"
        )

    # the same mappings when the tail device fails halfway through the run
    print("\nfailure of the tail device at half the analytic makespan:")
    for name, mapping in mappings.items():
        analytic = evaluator.model.simulate(mapping)
        clean = simulate_mapping(graph, platform, mapping)
        tail = max(clean.tasks, key=lambda t: t.finish).device
        trace = simulate_mapping(
            graph, platform, mapping,
            scenarios=[DeviceFailure(0.5 * analytic, device=tail)],
        )
        print(
            f"{name:>12s} | {platform.devices[tail].name} fails -> "
            f"completes at {trace.makespan * 1e3:.2f}ms "
            f"(+{trace.makespan / analytic - 1:.1%}), "
            f"{trace.n_killed} execution(s) lost"
        )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 120)
