"""Head-to-head comparison of every mapper in the library on one graph.

Runs the paper's full algorithm roster — three MILPs, HEFT, PEFT, NSGA-II
and the four decomposition variants — on a random series-parallel graph and
prints improvement, wall time and evaluation counts.  MILPs get short time
limits so this stays interactive; increase them for better MILP results.

Run:  python examples/compare_mappers.py [n_tasks] [seed]
"""

import sys

import numpy as np

from repro.evaluation import MappingEvaluator
from repro.graphs.generators import random_sp_graph
from repro.mappers import (
    BestRandomMapper,
    HeftMapper,
    NsgaIIMapper,
    PeftMapper,
    WgdpDeviceMapper,
    WgdpTimeMapper,
    ZhouLiuMapper,
    series_parallel,
    single_node,
    sn_first_fit,
    sp_first_fit,
)
from repro.platform import paper_platform


def main(n_tasks: int = 16, seed: int = 0) -> None:
    rng = np.random.default_rng(seed)
    graph = random_sp_graph(n_tasks, rng)
    platform = paper_platform()
    evaluator = MappingEvaluator(graph, platform, rng=np.random.default_rng(1))
    print(
        f"random SP graph: {graph.n_tasks} tasks, {graph.n_edges} edges; "
        f"pure-CPU makespan {evaluator.cpu_reported_makespan * 1e3:.1f} ms\n"
    )

    mappers = [
        BestRandomMapper(k=100),
        HeftMapper(),
        PeftMapper(),
        single_node(),
        series_parallel(),
        sn_first_fit(),
        sp_first_fit(),
        NsgaIIMapper(generations=100),
        WgdpDeviceMapper(time_limit_s=10),
        WgdpTimeMapper(time_limit_s=20),
        ZhouLiuMapper(time_limit_s=30),
    ]
    print(f"{'algorithm':>14s} | {'improvement':>11s} | {'time':>10s} | {'evals':>6s}")
    print("-" * 55)
    for mapper in mappers:
        res = mapper.map(evaluator, rng=np.random.default_rng(seed + 1))
        imp = evaluator.relative_improvement(res.mapping)
        print(
            f"{mapper.name:>14s} | {imp:>10.1%} | "
            f"{res.elapsed_s * 1e3:>8.1f}ms | {res.n_evaluations:>6d}"
        )


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 0
    main(n, seed)
