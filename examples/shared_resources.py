"""Shared platform resources: cross-job FPGA area, link slots, energy.

The analytic cost model — and the runtime engine of the early PRs —
budgets FPGA area *per job* and treats host↔device links as infinitely
parallel.  Serve a stream of jobs and both fictions break: two workflows
that are each feasible alone can claim more fabric than the device has,
and a burst of transfers rides a bus that carries only so many at once.

This example runs one SP workflow mapped by the decomposition mapper
(SPFirstFit) through three experiments:

1. **Area ledger** — two copies arrive at once on a platform whose FPGA
   fits 1.5x one job's footprint.  The engine's cross-job area ledger
   makes the second job's FPGA tasks *wait* for fabric instead of
   silently co-residing (``AreaWait`` events); with a replan policy the
   arriving job is instead re-mapped against the residual capacity.
2. **Link slots** — the same stream under ``link_slots`` 0 (unlimited),
   2 and 1: fewer slots, longer transfer queues, later results.
3. **Energy** — a mid-run GPU failure rolls work back; the trace's
   energy accounting charges the killed execution and its transfers as
   waste on top of the re-execution.

Run:  python examples/shared_resources.py [n_tasks]
"""

import dataclasses
import sys

import numpy as np

from repro.evaluation import MappingEvaluator
from repro.graphs.generators import random_sp_graph
from repro.mappers import sp_first_fit
from repro.platform import paper_platform
from repro.runtime import (
    AreaWait,
    DeviceFailure,
    Job,
    RuntimeEngine,
    simulate_mapping,
)

HEADROOM = 1.2


def squeezed_platform(platform, usage):
    """The paper platform with the FPGA sized at 1.2x one job's footprint."""
    devices = []
    for d, dev in enumerate(platform.devices):
        used = usage.get(d, 0.0)
        if dev.area_capacity is not None and used > 0.0:
            dev = dataclasses.replace(dev, area_capacity=used * HEADROOM)
        devices.append(dev)
    return platform.with_devices(devices)


def build_kernel_burst(n_lanes: int = 3, chain_len: int = 4):
    """Parallel streamable chains — the FPGA's sweet spot, fabric-hungry.

    With streaming, every task of a co-mapped chain is in flight at once,
    so one job's *concurrent* fabric usage equals its whole footprint —
    exactly the workload where a second simultaneous job cannot fit.
    """
    from repro.graphs import TaskGraph

    g = TaskGraph()
    tid = 0
    split = tid
    g.add_task(split, complexity=1.0, parallelizability=0.5,
               streamability=4.0, area=2.0)
    tid += 1
    merge_id = n_lanes * chain_len + 1
    for _ in range(n_lanes):
        prev = split
        for _ in range(chain_len):
            g.add_task(tid, complexity=8.0, parallelizability=0.1,
                       streamability=9.0, area=6.0)
            g.add_edge(prev, tid, data_mb=100.0)
            prev = tid
            tid += 1
        g.add_edge(prev, merge_id, data_mb=50.0)
    g.add_task(merge_id, complexity=1.0, parallelizability=0.5,
               streamability=4.0, area=2.0)
    return g


def main(n_tasks: int = 60) -> None:
    rng = np.random.default_rng(11)
    graph = random_sp_graph(n_tasks, rng)
    platform = paper_platform()
    evaluator = MappingEvaluator(graph, platform, rng=np.random.default_rng(1))
    mapping = list(sp_first_fit().map(evaluator).mapping)
    analytic = evaluator.model.simulate(mapping)
    usage = evaluator.model.area_usage(mapping)
    print(
        f"SP workflow: {graph.n_tasks} tasks — SPFirstFit analytic makespan "
        f"{analytic * 1e3:.1f} ms, FPGA footprint {usage.get(2, 0.0):.1f} "
        f"area units"
    )

    # --- 1) two concurrent FPGA-hungry jobs on a 1.2x-headroom fabric ----
    kernels = build_kernel_burst()
    kev = MappingEvaluator(kernels, platform, rng=np.random.default_rng(2))
    kmapping = list(sp_first_fit().map(kev).mapping)
    kanalytic = kev.model.simulate(kmapping)
    kusage = kev.model.area_usage(kmapping)
    tight = squeezed_platform(platform, kusage)
    burst = [
        Job(kernels, kmapping, arrival=0.0, name=f"burst{k}")
        for k in range(2)
    ]
    trace = RuntimeEngine(tight).run(burst)
    waits = [e for e in trace.events if isinstance(e, AreaWait)]
    print("\n-- cross-job FPGA area ledger --")
    print(
        f"2 simultaneous streaming-kernel jobs "
        f"({kusage.get(2, 0.0):.0f} area units each), capacity = "
        f"{HEADROOM:g}x one footprint:"
    )
    print(
        f"  {len(waits)} task(s) waited {trace.area_wait_time * 1e3:.1f} ms "
        f"total for fabric; burst done at {trace.makespan * 1e3:.1f} ms "
        f"(single job: {kanalytic * 1e3:.1f} ms)"
    )
    replanned = RuntimeEngine(tight, replan_policy="heft").run(burst)
    moved = sum(j.n_remapped for j in replanned.jobs)
    print(
        f"  with --replan-policy heft the arrival re-maps {moved} task(s) "
        f"onto the residual platform: done at "
        f"{replanned.makespan * 1e3:.1f} ms, "
        f"{replanned.area_wait_time * 1e3:.1f} ms area wait"
    )

    # --- 2) link-slot contention ----------------------------------------
    print("\n-- shared link slots (4 jobs, back-to-back arrivals) --")
    jobs = [
        Job(graph, mapping, arrival=k * 0.25 * analytic, name=f"j{k}")
        for k in range(4)
    ]
    for slots in (0, 2, 1):
        engine = RuntimeEngine(platform, link_slots=slots)
        t = engine.run(jobs)
        label = "unlimited" if slots == 0 else f"{slots:>9d}"
        print(
            f"  link_slots {label}: done {t.makespan * 1e3:8.1f} ms, "
            f"transfers queued {t.link_wait_time * 1e3:8.1f} ms"
        )

    # --- 3) energy accounting under failure ------------------------------
    print("\n-- energy (evaluation/energy.py rates) --")
    clean = simulate_mapping(graph, platform, mapping)
    # fail the busiest accelerator in the middle of its longest task, so
    # the failure genuinely kills running work
    victim = int(np.argmax(clean.device_busy[1:])) + 1
    longest = max(
        (t for t in clean.tasks if t.device == victim),
        key=lambda t: t.finish - t.start,
    )
    failed = simulate_mapping(
        graph, platform, mapping,
        scenarios=[
            DeviceFailure(0.5 * (longest.start + longest.finish),
                          device=victim),
        ],
    )
    print(
        f"  clean run : {clean.energy_j:7.1f} J "
        f"(compute {clean.compute_energy_j:.1f}, "
        f"transfers {clean.transfer_energy_j:.2f}, "
        f"idle {clean.idle_energy_j:.1f})"
    )
    print(
        f"  {platform.devices[victim].name:>9s} fails : "
        f"{failed.energy_j:7.1f} J — "
        f"{failed.wasted_energy_j:.1f} J burned on rolled-back work, "
        f"{failed.n_killed} task(s) re-executed"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 60)
