"""Quickstart: decompose the paper's Fig. 1 graph and map it.

Walks the full pipeline on the smallest meaningful input:

1. build the series-parallel task graph of paper Fig. 1,
2. print its decomposition tree and the candidate subgraph set of
   Sec. III-C (it matches the paper's ``S`` exactly),
3. augment the tasks with random model parameters (Sec. IV-B),
4. map it onto the CPU + GPU + FPGA platform with the SPFirstFit
   decomposition mapper and report the makespan improvement.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.evaluation import MappingEvaluator
from repro.graphs import TaskGraph, augment
from repro.mappers import sp_first_fit
from repro.platform import paper_platform
from repro.sp import decomposition_tree, series_parallel_candidates


def main() -> None:
    # The graph of paper Fig. 1: two branches 0-1-{2}-3-5 and 0-4-5.
    graph = TaskGraph.from_edges(
        [(0, 1), (1, 3), (1, 2), (2, 3), (3, 5), (0, 4), (4, 5)]
    )

    print("=== series-parallel decomposition tree (paper Fig. 1) ===")
    print(decomposition_tree(graph).pretty())

    print("\n=== candidate subgraphs (paper Sec. III-C) ===")
    for cand in series_parallel_candidates(graph):
        print(" ", sorted(cand))

    # Random task parameters: complexity/streamability ~ LogNormal(2, 0.5),
    # parallelizability perfect with probability 1/2 (Sec. IV-B).
    rng = np.random.default_rng(13)
    augment(graph, rng)

    platform = paper_platform()
    print(f"\n=== mapping onto {platform} ===")
    evaluator = MappingEvaluator(graph, platform, rng=np.random.default_rng(0))
    result = sp_first_fit().map(evaluator, rng=rng)

    names = [d.name for d in platform.devices]
    for task, device in zip(graph.tasks(), result.mapping):
        p = graph.params(task)
        print(
            f"  task {task}: -> {names[device]:10s} "
            f"(complexity={p.complexity:5.1f}, par={p.parallelizability:.2f}, "
            f"stream={p.streamability:4.1f})"
        )
    cpu_ms = evaluator.cpu_reported_makespan
    mapped_ms = evaluator.reported_makespan(result.mapping)
    print(f"\n  pure-CPU makespan : {cpu_ms * 1e3:8.2f} ms")
    print(f"  mapped makespan   : {mapped_ms * 1e3:8.2f} ms")
    print(
        f"  relative improvement: "
        f"{evaluator.relative_improvement(result.mapping):.1%}"
    )


if __name__ == "__main__":
    main()
